#include "server/session.hpp"

#include <algorithm>
#include <chrono>

#include "common/expect.hpp"

namespace gfor14::server {

anonchan::Params SessionConfig::params() const {
  return light ? anonchan::Params::light(n)
               : anonchan::Params::practical(n, kappa);
}

std::vector<Fld> SessionConfig::effective_inputs() const {
  if (!inputs.empty()) {
    GFOR14_EXPECTS(inputs.size() == n);
    return inputs;
  }
  // Canonical pattern: a distinct non-zero message per sender, keyed by the
  // session id so no two sessions of one engine run inject equal messages;
  // the receiver contributes the zero (non-)message.
  std::vector<Fld> x(n, Fld::zero());
  const net::PartyId recv = effective_receiver();
  for (std::size_t i = 0; i < n; ++i)
    if (i != recv) x[i] = Fld::from_u64(0xE12000 + 251 * id + i);
  return x;
}

std::string SessionConfig::effective_scope_label() const {
  return scope_label.empty() ? "session/" + std::to_string(id) : scope_label;
}

SessionSeeds derive_seeds(std::uint64_t master_seed,
                          std::uint64_t session_id) {
  // A FRESH master stream per call: forking from a long-lived master would
  // make the lineage depend on how many sessions were derived before this
  // one. Rng::fork derives the child from the full 256-bit parent state, so
  // distinct ids give pairwise-independent streams (common/rng.hpp).
  Rng session_root = Rng(master_seed).fork(session_id);
  SessionSeeds s;
  s.net_seed = session_root.next_u64();
  s.fault_seed = session_root.next_u64();
  return s;
}

Session::Session(SessionConfig config, std::uint64_t master_seed)
    : config_(std::move(config)),
      master_seed_(master_seed),
      seeds_(derive_seeds(master_seed, config_.id)) {
  GFOR14_EXPECTS(config_.n >= 3);
  GFOR14_EXPECTS(config_.effective_receiver() < config_.n);
}

namespace {

json::Value recording_config(const SessionConfig& cfg,
                             const SessionSeeds& seeds) {
  json::Value c = json::Value::object();
  c.set("command", std::string("session"));
  c.set("session_id", cfg.id);
  c.set("n", cfg.n);
  c.set("scheme", std::string(vss::scheme_name(cfg.scheme)));
  c.set("kappa", cfg.kappa);
  c.set("profile", std::string(cfg.light ? "light" : "practical"));
  c.set("receiver", cfg.effective_receiver());
  c.set("seed", net::hex_u64(seeds.net_seed));
  c.set("fault_seed",
        net::hex_u64(cfg.fault_seed.value_or(seeds.fault_seed)));
  c.set("fault_specs", cfg.faults.specs.size());
  return c;
}

std::size_t count_delivered(const anonchan::Output& out,
                            const std::vector<Fld>& inputs,
                            net::PartyId receiver) {
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    if (i != receiver && inputs[i] != Fld::zero() && out.delivered(inputs[i]))
      ++delivered;
  return delivered;
}

/// The shared execution core of Session::run and replay_verify: builds the
/// whole per-session stack inside the given metrics attachment and runs one
/// channel invocation with `observer` attached.
anonchan::Output execute(const SessionConfig& cfg, const SessionSeeds& seeds,
                         const std::shared_ptr<net::RoundObserver>& observer,
                         net::Network& net,
                         std::shared_ptr<net::FaultEngine>* engine_out) {
  net.set_threads(cfg.lanes);
  if (!cfg.faults.empty()) {
    for (net::PartyId p : cfg.faults.senders())
      if (p < cfg.n) net.set_corrupt(p, true);
    auto engine = std::make_shared<net::FaultEngine>(
        cfg.faults, cfg.fault_seed.value_or(seeds.fault_seed));
    net.attach_faults(engine);
    if (engine_out != nullptr) *engine_out = std::move(engine);
  }
  net.attach_observer(observer);
  auto vss = vss::make_vss(cfg.scheme, net);
  anonchan::AnonChan chan(net, *vss, cfg.params());
  return chan.run(cfg.effective_receiver(), cfg.effective_inputs());
}

}  // namespace

SessionResult Session::run() {
  GFOR14_EXPECTS(!spent_);
  spent_ = true;

  // The scope is looked up (or created) under the process root, reset so a
  // relaunched label starts from zero, and attached to THIS thread for the
  // whole execution: every component constructed below binds its metric
  // handles to it (metrics.hpp attribution-by-construction).
  auto scope =
      metrics::Registry::instance().scope(config_.effective_scope_label());
  scope->reset();
  metrics::RegistryAttachment attach(scope);

  SessionResult r;
  r.config = config_;
  r.seeds = seeds_;
  r.scope_name = config_.effective_scope_label();

  auto recorder = std::make_shared<net::Recorder>(
      net::Recorder::Options{config_.record_payloads},
      recording_config(config_, seeds_));
  std::shared_ptr<net::FaultEngine> faults;

  net::Network net(config_.n, seeds_.net_seed);
  const auto t0 = std::chrono::steady_clock::now();
  r.output = execute(config_, seeds_, recorder, net, &faults);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  r.costs = net.costs();
  r.recording = recorder->take();
  r.transcript_digest = r.recording.final_digest;
  r.blames = net.blames();
  if (faults) r.fault_events = faults->events();
  r.messages_delivered = count_delivered(r.output, config_.effective_inputs(),
                                         config_.effective_receiver());

  // Completion roll-up: push every remaining counter delta into the process
  // root so parent totals are exact the moment the session finishes (the
  // Network already rolled up at each round barrier; this covers anything
  // charged after the last barrier).
  scope->roll_up();
  r.counters = scope->counters_snapshot();
  return r;
}

std::optional<audit::Divergence> replay_verify(const SessionResult& result,
                                               std::uint64_t master_seed) {
  // Solo re-execution under a throwaway scope: the verifier compares the
  // live transcript against the co-scheduled recording round by round, so
  // any influence another session had on this one surfaces as a precise
  // (round, channel, byte) divergence.
  auto scope = metrics::Registry::instance().scope(
      "replay/" + result.config.effective_scope_label());
  scope->reset();
  metrics::RegistryAttachment attach(scope);

  const SessionSeeds seeds = derive_seeds(master_seed, result.config.id);
  auto verifier = std::make_shared<audit::ReplayVerifier>(result.recording);
  SessionConfig solo = result.config;
  solo.lanes = 1;
  net::Network net(solo.n, seeds.net_seed);
  (void)execute(solo, seeds, verifier, net, nullptr);
  scope->roll_up();
  return verifier->finish();
}

}  // namespace gfor14::server
