#include "server/session.hpp"

#include <algorithm>
#include <chrono>

#include "common/expect.hpp"

namespace gfor14::server {

anonchan::Params SessionConfig::params() const {
  return light ? anonchan::Params::light(n)
               : anonchan::Params::practical(n, kappa);
}

std::vector<Fld> SessionConfig::effective_inputs() const {
  if (!inputs.empty()) {
    GFOR14_EXPECTS(inputs.size() == n);
    return inputs;
  }
  // Canonical pattern: a distinct non-zero message per sender, keyed by the
  // session id so no two sessions of one engine run inject equal messages;
  // the receiver contributes the zero (non-)message.
  std::vector<Fld> x(n, Fld::zero());
  const net::PartyId recv = effective_receiver();
  for (std::size_t i = 0; i < n; ++i)
    if (i != recv) x[i] = Fld::from_u64(0xE12000 + 251 * id + i);
  return x;
}

std::string SessionConfig::effective_scope_label() const {
  return scope_label.empty() ? "session/" + std::to_string(id) : scope_label;
}

SessionSeeds derive_seeds(std::uint64_t master_seed, std::uint64_t session_id,
                          std::size_t attempt) {
  // A FRESH master stream per call: forking from a long-lived master would
  // make the lineage depend on how many sessions were derived before this
  // one. Rng::fork derives the child from the full 256-bit parent state, so
  // distinct ids give pairwise-independent streams (common/rng.hpp).
  // Retries re-fork the session root by the attempt number, giving every
  // attempt an independent stream while attempt 0 stays byte-identical to
  // the original two-argument lineage.
  Rng session_root = Rng(master_seed).fork(session_id);
  if (attempt != 0) session_root = session_root.fork(attempt);
  SessionSeeds s;
  s.net_seed = session_root.next_u64();
  s.fault_seed = session_root.next_u64();
  return s;
}

std::string FailureRecord::describe() const {
  std::string s = "session " + std::to_string(session_id) + " attempt " +
                  std::to_string(attempt) + ": " +
                  net::failure_kind_name(kind) + " at round " +
                  std::to_string(failing_round);
  if (!blamed.empty()) {
    s += ", blamed {";
    for (std::size_t i = 0; i < blamed.size(); ++i)
      s += (i ? "," : "") + std::string("P") + std::to_string(blamed[i]);
    s += "}";
  }
  if (!what.empty()) s += " (" + what + ")";
  return s;
}

Session::Session(SessionConfig config, std::uint64_t master_seed)
    : config_(std::move(config)),
      master_seed_(master_seed),
      seeds_(derive_seeds(master_seed, config_.id)) {
  GFOR14_EXPECTS(config_.n >= 3);
  GFOR14_EXPECTS(config_.effective_receiver() < config_.n);
}

namespace {

json::Value recording_config(const SessionConfig& cfg,
                             const SessionSeeds& seeds, std::size_t attempt) {
  json::Value c = json::Value::object();
  c.set("command", std::string("session"));
  c.set("session_id", cfg.id);
  c.set("attempt", attempt);
  c.set("n", cfg.n);
  c.set("scheme", std::string(vss::scheme_name(cfg.scheme)));
  c.set("kappa", cfg.kappa);
  c.set("profile", std::string(cfg.light ? "light" : "practical"));
  c.set("receiver", cfg.effective_receiver());
  c.set("seed", net::hex_u64(seeds.net_seed));
  c.set("fault_seed",
        net::hex_u64(cfg.fault_seed.value_or(seeds.fault_seed)));
  c.set("fault_specs", cfg.faults.specs.size());
  return c;
}

std::size_t count_delivered(const anonchan::Output& out,
                            const std::vector<Fld>& inputs,
                            net::PartyId receiver) {
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    if (i != receiver && inputs[i] != Fld::zero() && out.delivered(inputs[i]))
      ++delivered;
  return delivered;
}

/// Chaos injection (DESIGN.md §14): throws net::InjectedCrash out of the
/// target round's barrier, after the recorder observed the round — so the
/// recording holds everything delivered before the strand "died".
class CrashInjector : public net::RoundObserver {
 public:
  explicit CrashInjector(std::size_t crash_round)
      : crash_round_(crash_round) {}

  void on_round_end(const net::Network&, const net::CostReport&) override {
    if (++rounds_ >= crash_round_)
      throw net::InjectedCrash("injected strand crash at round barrier " +
                               std::to_string(rounds_));
  }

 private:
  std::size_t crash_round_;
  std::size_t rounds_ = 0;
};

/// The shared execution core of Session::run, run_attempt and
/// replay_verify: builds the whole per-session stack inside the given
/// metrics attachment and runs one channel invocation with `observers`
/// attached (in order).
anonchan::Output execute(
    const SessionConfig& cfg, const SessionSeeds& seeds,
    const std::vector<std::shared_ptr<net::RoundObserver>>& observers,
    net::Network& net, std::shared_ptr<net::FaultEngine>* engine_out) {
  net.set_threads(cfg.lanes);
  if (!cfg.faults.empty()) {
    for (net::PartyId p : cfg.faults.senders())
      if (p < cfg.n) net.set_corrupt(p, true);
    auto engine = std::make_shared<net::FaultEngine>(
        cfg.faults, cfg.fault_seed.value_or(seeds.fault_seed));
    net.attach_faults(engine);
    if (engine_out != nullptr) *engine_out = std::move(engine);
  }
  for (const auto& obs : observers) net.attach_observer(obs);
  auto vss = vss::make_vss(cfg.scheme, net);
  anonchan::AnonChan chan(net, *vss, cfg.params());
  return chan.run(cfg.effective_receiver(), cfg.effective_inputs());
}

/// Collects the deterministic payload of a finished execution into a
/// SessionResult (everything except wall_ms, which the caller timed).
SessionResult collect_result(const SessionConfig& cfg,
                             const SessionSeeds& seeds, std::size_t attempt,
                             anonchan::Output output, net::Network& net,
                             net::Recorder& recorder,
                             const net::FaultEngine* faults) {
  SessionResult r;
  r.config = cfg;
  r.seeds = seeds;
  r.attempt = attempt;
  r.scope_name = cfg.effective_scope_label();
  r.output = std::move(output);
  r.costs = net.costs();
  r.recording = recorder.take();
  r.transcript_digest = r.recording.final_digest;
  r.blames = net.blames();
  if (faults != nullptr) r.fault_events = faults->events();
  r.messages_delivered = count_delivered(r.output, cfg.effective_inputs(),
                                         cfg.effective_receiver());
  return r;
}

/// Distinct accused parties, ascending, public blames folded in.
std::vector<net::PartyId> blame_set(const net::Network& net) {
  std::vector<net::PartyId> accused;
  for (const auto& b : net.blames()) accused.push_back(b.accused);
  std::sort(accused.begin(), accused.end());
  accused.erase(std::unique(accused.begin(), accused.end()), accused.end());
  return accused;
}

}  // namespace

SessionResult Session::run() {
  GFOR14_EXPECTS(!spent_);
  spent_ = true;

  // The scope is looked up (or created) under the process root, reset so a
  // relaunched label starts from zero, and attached to THIS thread for the
  // whole execution: every component constructed below binds its metric
  // handles to it (metrics.hpp attribution-by-construction).
  auto scope =
      metrics::Registry::instance().scope(config_.effective_scope_label());
  scope->reset();
  metrics::RegistryAttachment attach(scope);

  auto recorder = std::make_shared<net::Recorder>(
      net::Recorder::Options{config_.record_payloads},
      recording_config(config_, seeds_, 0));
  std::shared_ptr<net::FaultEngine> faults;

  net::Network net(config_.n, seeds_.net_seed);
  const auto t0 = std::chrono::steady_clock::now();
  auto output = execute(config_, seeds_, {recorder}, net, &faults);
  const auto t1 = std::chrono::steady_clock::now();

  SessionResult r = collect_result(config_, seeds_, 0, std::move(output), net,
                                   *recorder, faults.get());
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  // Completion roll-up: push every remaining counter delta into the process
  // root so parent totals are exact the moment the session finishes (the
  // Network already rolled up at each round barrier; this covers anything
  // charged after the last barrier).
  scope->roll_up();
  r.counters = scope->counters_snapshot();
  return r;
}

SessionOutcome run_attempt(const SessionConfig& config,
                           std::uint64_t master_seed,
                           const AttemptSpec& spec) {
  GFOR14_EXPECTS(config.n >= 3);
  GFOR14_EXPECTS(config.effective_receiver() < config.n);

  // The EXECUTED config: supervised retries may run with the fault plan
  // cleared (the crashed member was replaced); the result echoes this
  // effective config so replay_verify re-executes what actually ran.
  SessionConfig cfg = config;
  if (spec.drop_faults) {
    cfg.faults = net::FaultPlan{};
    cfg.fault_seed.reset();
  }
  const SessionSeeds seeds = derive_seeds(master_seed, cfg.id, spec.attempt);

  auto scope =
      metrics::Registry::instance().scope(cfg.effective_scope_label());
  scope->reset();
  metrics::RegistryAttachment attach(scope);

  auto recorder = std::make_shared<net::Recorder>(
      net::Recorder::Options{cfg.record_payloads},
      recording_config(cfg, seeds, spec.attempt));
  std::vector<std::shared_ptr<net::RoundObserver>> observers = {recorder};
  if (spec.crash_at_round.has_value())
    observers.push_back(std::make_shared<CrashInjector>(*spec.crash_at_round));
  std::shared_ptr<net::FaultEngine> faults;

  SessionOutcome outcome;
  net::Network net(cfg.n, seeds.net_seed);
  if (spec.round_budget != 0) net.set_max_rounds(spec.round_budget);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    auto output = execute(cfg, seeds, observers, net, &faults);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    SessionResult r = collect_result(cfg, seeds, spec.attempt,
                                     std::move(output), net, *recorder,
                                     faults.get());
    r.wall_ms = wall_ms;
    if (spec.min_delivered != 0 &&
        r.messages_delivered < spec.min_delivered) {
      FailureRecord f;
      f.session_id = cfg.id;
      f.attempt = spec.attempt;
      f.kind = net::FailureKind::kDeliveryShortfall;
      f.what = "delivered " + std::to_string(r.messages_delivered) + " < " +
               std::to_string(spec.min_delivered) + " required";
      f.failing_round = r.costs.rounds;
      f.blamed = blame_set(net);
      f.wall_ms = wall_ms;
      outcome.failure = std::move(f);
    } else if (spec.wall_deadline_ms > 0.0 &&
               wall_ms > spec.wall_deadline_ms) {
      // Environmental safety net — never part of the determinism contract.
      FailureRecord f;
      f.session_id = cfg.id;
      f.attempt = spec.attempt;
      f.kind = net::FailureKind::kDeadlineExceeded;
      f.what = "wall " + std::to_string(wall_ms) + " ms over deadline";
      f.failing_round = r.costs.rounds;
      f.blamed = blame_set(net);
      f.wall_ms = wall_ms;
      outcome.failure = std::move(f);
    } else {
      outcome.result = std::move(r);
    }
  } catch (const std::exception& e) {
    // Containment point: the Network is still alive here, so the record
    // can carry the failing round and the blame set the session had
    // accumulated before dying.
    const auto t1 = std::chrono::steady_clock::now();
    FailureRecord f;
    f.session_id = cfg.id;
    f.attempt = spec.attempt;
    f.kind = net::classify_failure(e);
    f.what = e.what();
    f.failing_round = net.costs().rounds;
    f.blamed = blame_set(net);
    f.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    outcome.failure = std::move(f);
  }

  // Roll up on BOTH paths: a failed attempt's partial traffic still belongs
  // in the process totals (it happened), and the scope must be settled
  // before a retry resets it.
  scope->roll_up();
  if (outcome.ok()) outcome.result->counters = scope->counters_snapshot();
  return outcome;
}

std::optional<audit::Divergence> replay_verify(const SessionResult& result,
                                               std::uint64_t master_seed) {
  // Solo re-execution under a throwaway scope: the verifier compares the
  // live transcript against the co-scheduled recording round by round, so
  // any influence another session had on this one surfaces as a precise
  // (round, channel, byte) divergence. Retried results replay under their
  // (id, attempt) lineage against the effective (executed) config.
  auto scope = metrics::Registry::instance().scope(
      "replay/" + result.config.effective_scope_label());
  scope->reset();
  metrics::RegistryAttachment attach(scope);

  const SessionSeeds seeds =
      derive_seeds(master_seed, result.config.id, result.attempt);
  auto verifier = std::make_shared<audit::ReplayVerifier>(result.recording);
  SessionConfig solo = result.config;
  solo.lanes = 1;
  net::Network net(solo.n, seeds.net_seed);
  (void)execute(solo, seeds, {verifier}, net, nullptr);
  scope->roll_up();
  return verifier->finish();
}

}  // namespace gfor14::server
