#include "server/slo.hpp"

#include <algorithm>
#include <cstdio>

namespace gfor14::server {

namespace {

std::string fmt_value(double v) {
  char buf[64];
  // Two decimals for small rates, integral style for big magnitudes.
  if (v != 0.0 && (v >= 1000.0 || v <= -1000.0))
    std::snprintf(buf, sizeof buf, "%.0f", v);
  else
    std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

std::string SloBreach::describe() const {
  // Direction: delivery/throughput targets are minima, the others maxima.
  const bool minimum =
      slo == "messages_per_sec" || slo == "honest_delivery";
  return slo + " " + fmt_value(actual) + (minimum ? " < " : " > ") +
         fmt_value(target) + " (since wave " + std::to_string(since_wave) +
         ")";
}

std::string SloStatus::describe() const {
  if (breaches.empty()) return "healthy";
  std::string out = "DEGRADED (";
  for (std::size_t i = 0; i < breaches.size(); ++i) {
    if (i > 0) out += "; ";
    out += breaches[i].describe();
  }
  out += ")";
  return out;
}

json::Value SloStatus::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("wave", static_cast<double>(wave));
  doc.set("degraded", degraded());
  json::Value list = json::Value::array();
  for (const SloBreach& b : breaches) {
    json::Value o = json::Value::object();
    o.set("slo", b.slo);
    o.set("target", b.target);
    o.set("actual", b.actual);
    o.set("since_wave", static_cast<double>(b.since_wave));
    list.push_back(std::move(o));
  }
  doc.set("breaches", std::move(list));
  return doc;
}

SloMonitor::SloMonitor(SloTargets targets) : targets_(targets) {}

const SloStatus& SloMonitor::evaluate(const SloInputs& inputs,
                                      std::size_t wave) {
  status_.wave = wave;
  status_.breaches.clear();
  const auto check = [&](const char* name, bool violated, double target,
                         double actual) {
    auto anchor = std::find_if(
        since_.begin(), since_.end(),
        [&](const auto& entry) { return entry.first == name; });
    if (!violated) {
      if (anchor != since_.end()) since_.erase(anchor);  // recovery
      return;
    }
    if (anchor == since_.end())
      anchor = since_.insert(since_.end(), {name, wave});
    SloBreach b;
    b.slo = name;
    b.target = target;
    b.actual = actual;
    b.since_wave = anchor->second;
    status_.breaches.push_back(std::move(b));
  };
  if (targets_.round_wall_p95_us > 0.0)
    check("round_wall_p95_us",
          inputs.round_wall_p95_us > targets_.round_wall_p95_us,
          targets_.round_wall_p95_us, inputs.round_wall_p95_us);
  if (targets_.min_messages_per_sec > 0.0)
    check("messages_per_sec",
          inputs.messages_per_sec < targets_.min_messages_per_sec,
          targets_.min_messages_per_sec, inputs.messages_per_sec);
  if (targets_.max_retry_rate >= 0.0)
    check("retry_rate", inputs.retry_rate > targets_.max_retry_rate,
          targets_.max_retry_rate, inputs.retry_rate);
  if (targets_.min_honest_delivery >= 0.0)
    check("honest_delivery",
          inputs.honest_delivery < targets_.min_honest_delivery,
          targets_.min_honest_delivery, inputs.honest_delivery);
  return status_;
}

}  // namespace gfor14::server
