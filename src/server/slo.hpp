// Declarative service-level objectives for the supervised runtime
// (DESIGN.md §15).
//
// The supervisor's old health story was one boolean: `server.degraded` went
// 1 whenever a session had permanently failed or a retry was waiting out its
// backoff. That flag said nothing about WHICH expectation broke, by how
// much, or since when — the three questions an operator (or a CI gate)
// actually asks. This module replaces the presentation of that flag with
// structured reasons: a SloTargets block declares the expectations, an
// SloMonitor evaluates them against live scoped metrics at every wave
// barrier, and each violated target becomes an SloBreach carrying the
// target, the observed value and the first wave the breach was seen at.
// Recovery is first-class: a target back inside its bound drops its breach
// (and its since-wave anchor), which the 1-vs-4-lane transition tests pin.
//
// Determinism split, as everywhere in the repo: retry_rate and
// honest-delivery fraction derive from the deterministic schedule, so their
// breach/recovery waves replay exactly at any thread count. round-wall p95
// and messages_per_sec measure the machine and are environmental — they
// exist for operators, never for byte-identity claims.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace gfor14::server {

/// Declarative targets. The zero-initialized block checks nothing — each
/// target opts in: rates/fractions with a negative sentinel, the
/// environmental bounds with 0 = off.
struct SloTargets {
  /// Environmental: p95 of net.round_wall_us over the root scope, in
  /// microseconds. 0 = unchecked.
  double round_wall_p95_us = 0.0;
  /// Environmental: delivered messages per second since runtime start.
  /// 0 = unchecked.
  double min_messages_per_sec = 0.0;
  /// Deterministic: retries / admitted. Negative = unchecked.
  double max_retry_rate = -1.0;
  /// Deterministic: completed / terminal sessions. Negative = unchecked.
  double min_honest_delivery = -1.0;

  bool any() const {
    return round_wall_p95_us > 0.0 || min_messages_per_sec > 0.0 ||
           max_retry_rate >= 0.0 || min_honest_delivery >= 0.0;
  }
};

/// Live values the monitor evaluates a wave against.
struct SloInputs {
  double round_wall_p95_us = 0.0;
  double messages_per_sec = 0.0;
  double retry_rate = 0.0;
  double honest_delivery = 1.0;
};

/// One currently-violated target.
struct SloBreach {
  std::string slo;  ///< "round_wall_p95_us" | "messages_per_sec" |
                    ///< "retry_rate" | "honest_delivery"
  double target = 0.0;
  double actual = 0.0;
  std::size_t since_wave = 0;  ///< first wave this breach was observed at

  /// "retry_rate 0.50 > 0.25 (since wave 3)".
  std::string describe() const;
};

/// Structured health at one wave barrier: healthy iff no breach.
struct SloStatus {
  std::size_t wave = 0;  ///< wave of the latest evaluation
  std::vector<SloBreach> breaches;

  bool degraded() const { return !breaches.empty(); }
  /// "healthy" or "DEGRADED (reason; reason)".
  std::string describe() const;
  json::Value to_json() const;
};

/// Evaluates targets wave by wave, anchoring each breach to the first wave
/// it appeared in and clearing the anchor on recovery.
class SloMonitor {
 public:
  explicit SloMonitor(SloTargets targets = {});

  const SloTargets& targets() const { return targets_; }
  /// Re-evaluates every configured target; returns the updated status.
  const SloStatus& evaluate(const SloInputs& inputs, std::size_t wave);
  const SloStatus& status() const { return status_; }

 private:
  SloTargets targets_;
  SloStatus status_;
  /// since-wave anchors for breaches that persisted from earlier waves,
  /// keyed by slo name; erased on recovery.
  std::vector<std::pair<std::string, std::size_t>> since_;
};

}  // namespace gfor14::server
