#include "server/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace gfor14::server {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kAdmitted: return "admitted";
    case SessionState::kRunning: return "running";
    case SessionState::kCompleted: return "completed";
    case SessionState::kFailed: return "failed";
  }
  return "failed";
}

std::size_t RetryPolicy::backoff_waves(std::size_t attempt) const {
  GFOR14_EXPECTS(attempt >= 1);
  if (backoff_base == 0) return 0;
  // min(base << (attempt - 1), cap), shift-overflow safe: once the shifted
  // value would pass the cap the cap wins, so clamp the exponent first.
  const std::size_t shift = attempt - 1;
  if (shift >= 63) return backoff_cap;
  const std::size_t raw = backoff_base << shift;
  const bool overflowed = (raw >> shift) != backoff_base;
  return overflowed ? backoff_cap : std::min(raw, backoff_cap);
}

std::optional<std::size_t> chaos_crash_round(const ChaosOptions& chaos,
                                             std::uint64_t master_seed,
                                             std::uint64_t session_id,
                                             std::size_t attempt) {
  if (!chaos.enabled) return std::nullopt;
  const std::size_t every = chaos.every == 0 ? 1 : chaos.every;
  if (session_id % every != 0) return std::nullopt;
  if (attempt >= chaos.crash_attempts) return std::nullopt;
  const std::size_t lo = std::max<std::size_t>(chaos.min_round, 1);
  const std::size_t hi = std::max(chaos.max_round, lo + 1);
  // A chaos-private lineage (master xor a fixed tag) so injecting crashes
  // never perturbs any session's own Rng stream; forked by (id, attempt + 1)
  // the round is a pure function of the schedule coordinates.
  Rng r = Rng(master_seed ^ 0xC7A05FA117ULL).fork(session_id).fork(attempt + 1);
  return lo + static_cast<std::size_t>(r.next_below(hi - lo));
}

const char* schedule_event_name(ScheduleEvent::Kind kind) {
  switch (kind) {
    case ScheduleEvent::Kind::kAdmit: return "admit";
    case ScheduleEvent::Kind::kComplete: return "complete";
    case ScheduleEvent::Kind::kFail: return "fail";
    case ScheduleEvent::Kind::kRetry: return "retry";
    case ScheduleEvent::Kind::kGiveUp: return "give_up";
  }
  return "admit";
}

std::string format_schedule(const std::vector<ScheduleEvent>& events) {
  std::string out;
  for (const auto& e : events) {
    out += "w" + std::to_string(e.wave) + " " + schedule_event_name(e.kind) +
           " id=" + std::to_string(e.session_id) +
           " attempt=" + std::to_string(e.attempt);
    if (e.kind == ScheduleEvent::Kind::kRetry)
      out += " eligible=w" + std::to_string(e.eligible_wave);
    if (e.kind == ScheduleEvent::Kind::kFail ||
        e.kind == ScheduleEvent::Kind::kGiveUp)
      out += " cause=" + std::string(net::failure_kind_name(e.failure));
    out += "\n";
  }
  return out;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx =
      std::min(sorted.size() - 1, static_cast<std::size_t>(pos + 0.5));
  return sorted[idx];
}

SupervisedRuntime::SupervisedRuntime(SupervisorOptions options)
    : options_(options),
      started_(std::chrono::steady_clock::now()),
      slo_(options.slo) {
  GFOR14_EXPECTS(options_.queue_capacity >= 1);
  GFOR14_EXPECTS(options_.retry.max_attempts >= 1);
  auto& root = metrics::Registry::instance();
  meters_.admitted = &root.counter("server.admitted");
  meters_.completed = &root.counter("server.completed");
  meters_.failed = &root.counter("server.failed");
  meters_.retried = &root.counter("server.retried");
  meters_.failed_sessions = &root.counter("server.failed_sessions");
  meters_.queue_depth = &root.gauge("server.queue_depth");
  meters_.degraded = &root.gauge("server.degraded");
  meters_.slo_breaches = &root.gauge("server.slo_breaches");
}

SupervisedRuntime::~SupervisedRuntime() { close(); }

std::size_t SupervisedRuntime::threads() const {
  return options_.threads == 0 ? default_threads() : options_.threads;
}

std::size_t SupervisedRuntime::pending_locked() const {
  std::size_t pending = 0;
  for (const auto& [id, entry] : entries_)
    if (entry.state == SessionState::kAdmitted ||
        entry.state == SessionState::kRunning)
      ++pending;
  return pending;
}

void SupervisedRuntime::set_queue_gauges_locked() {
  const std::size_t depth = pending_locked();
  high_water_ = std::max(high_water_, depth);
  meters_.queue_depth->set(static_cast<double>(depth));
  // Degraded while any session has permanently failed or a crashed session
  // is still waiting out its retry backoff; healthy again once the retry
  // backlog clears with no give-ups.
  bool degraded = false;
  for (const auto& [id, entry] : entries_) {
    if (entry.state == SessionState::kFailed) degraded = true;
    if (entry.state == SessionState::kAdmitted && entry.attempt > 0)
      degraded = true;
  }
  // The gauge keeps its legacy meaning and additionally trips while any
  // declared SLO is breached; the WHICH/by-how-much/since-when story lives
  // in the structured SloStatus (slo_status(), RuntimeReport.slo).
  meters_.degraded->set(degraded || slo_.status().degraded() ? 1.0 : 0.0);
}

void SupervisedRuntime::evaluate_slo_locked(std::size_t wave) {
  SloInputs in;
  in.retry_rate = entries_.empty()
                      ? 0.0
                      : static_cast<double>(retries_) /
                            static_cast<double>(entries_.size());
  const std::size_t terminal = completed_.size() + failed_sessions_;
  in.honest_delivery =
      terminal == 0 ? 1.0
                    : static_cast<double>(completed_.size()) /
                          static_cast<double>(terminal);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  in.messages_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(messages_delivered_) / elapsed_s
                      : 0.0;
  // Sessions observe their round walls into their own scope, which forwards
  // to the root at observe time — the root histogram sees every co-scheduled
  // session's rounds.
  in.round_wall_p95_us =
      metrics::Registry::instance().histogram("net.round_wall_us").quantile(
          0.95);
  const SloStatus& status = slo_.evaluate(in, wave);
  meters_.slo_breaches->set(static_cast<double>(status.breaches.size()));
}

bool SupervisedRuntime::admit_locked(SessionConfig&& config,
                                     std::unique_lock<std::mutex>&) {
  if (closed_) return false;
  GFOR14_EXPECTS(entries_.find(config.id) == entries_.end());
  Entry entry;
  entry.state = SessionState::kAdmitted;
  entry.attempt = 0;
  entry.eligible_wave = wave_;
  entry.admission_index = admission_counter_++;
  entry.admitted_at = std::chrono::steady_clock::now();
  const std::uint64_t id = config.id;
  entry.config = std::move(config);
  entries_.emplace(id, std::move(entry));
  ScheduleEvent e;
  e.kind = ScheduleEvent::Kind::kAdmit;
  e.wave = wave_;
  e.session_id = id;
  e.attempt = 0;
  schedule_.push_back(e);
  meters_.admitted->add();
  set_queue_gauges_locked();
  return true;
}

bool SupervisedRuntime::submit(SessionConfig config) {
  std::unique_lock<std::mutex> lock(mu_);
  space_.wait(lock, [&] {
    return closed_ || pending_locked() < options_.queue_capacity;
  });
  return admit_locked(std::move(config), lock);
}

bool SupervisedRuntime::try_submit(SessionConfig config) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_ || pending_locked() >= options_.queue_capacity) return false;
  return admit_locked(std::move(config), lock);
}

void SupervisedRuntime::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  space_.notify_all();
}

std::size_t SupervisedRuntime::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_locked();
}

std::size_t SupervisedRuntime::queue_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

SessionState SupervisedRuntime::state_of(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  GFOR14_EXPECTS(it != entries_.end());
  return it->second.state;
}

bool SupervisedRuntime::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_locked() == 0;
}

AttemptSpec SupervisedRuntime::make_attempt_spec(const Entry& entry) const {
  AttemptSpec spec;
  spec.attempt = entry.attempt;
  spec.round_budget = options_.retry.round_budget;
  spec.min_delivered = options_.retry.min_delivered;
  spec.wall_deadline_ms = options_.retry.wall_deadline_ms;
  spec.drop_faults =
      entry.attempt > 0 && options_.retry.drop_faults_on_retry;
  spec.crash_at_round = chaos_crash_round(options_.chaos, options_.master_seed,
                                          entry.config.id, entry.attempt);
  return spec;
}

std::size_t SupervisedRuntime::run_wave() {
  // Snapshot this wave's work under the lock, in admission order.
  struct Work {
    std::uint64_t id = 0;
    SessionConfig config;
    AttemptSpec spec;
    std::chrono::steady_clock::time_point admitted_at;
  };
  std::vector<Work> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GFOR14_EXPECTS(!draining_wave_);  // one wave-driving thread at a time
    // Fast-forward over empty waves: when everything admitted is a retry
    // waiting out its backoff, jump straight to the earliest eligible wave
    // instead of burning wave numbers (keeps the schedule canonical).
    std::size_t earliest = static_cast<std::size_t>(-1);
    for (const auto& [id, entry] : entries_)
      if (entry.state == SessionState::kAdmitted)
        earliest = std::min(earliest, entry.eligible_wave);
    if (earliest == static_cast<std::size_t>(-1)) return 0;
    wave_ = std::max(wave_, earliest);
    for (auto& [id, entry] : entries_) {
      if (entry.state != SessionState::kAdmitted) continue;
      if (entry.eligible_wave > wave_) continue;
      entry.state = SessionState::kRunning;
      Work w;
      w.id = id;
      w.config = entry.config;
      w.spec = make_attempt_spec(entry);
      w.admitted_at = entry.admitted_at;
      work.push_back(std::move(w));
    }
    GFOR14_EXPECTS(!work.empty());
    std::sort(work.begin(), work.end(), [&](const Work& a, const Work& b) {
      return entries_.at(a.id).admission_index <
             entries_.at(b.id).admission_index;
    });
    draining_wave_ = true;
  }

  // Execute the wave: one barrier across the pool, failures contained
  // per-strand inside run_attempt — nothing escapes the parallel_for.
  std::vector<SessionOutcome> outcomes(work.size());
  ThreadPool::instance().parallel_for(
      0, work.size(), threads(), [&](std::size_t i) {
        try {
          outcomes[i] = run_attempt(work[i].config, options_.master_seed,
                                    work[i].spec);
        } catch (const std::exception& e) {
          // run_attempt contains everything thrown mid-protocol; this
          // backstop catches precondition failures raised before the
          // session's Network even exists (e.g. an invalid config), so a
          // supervised strand can NEVER leak an exception.
          FailureRecord f;
          f.session_id = work[i].id;
          f.attempt = work[i].spec.attempt;
          f.kind = net::classify_failure(e);
          f.what = e.what();
          outcomes[i].failure = std::move(f);
        }
      });
  const auto wave_end = std::chrono::steady_clock::now();

  // Record outcomes and schedule retries, in admission order — so the
  // schedule log and the completed/failures vectors are identical at every
  // thread count.
  std::lock_guard<std::mutex> lock(mu_);
  draining_wave_ = false;
  const std::size_t this_wave = wave_;
  for (std::size_t i = 0; i < work.size(); ++i) {
    Entry& entry = entries_.at(work[i].id);
    ScheduleEvent e;
    e.wave = this_wave;
    e.session_id = work[i].id;
    e.attempt = work[i].spec.attempt;
    if (outcomes[i].ok()) {
      entry.state = SessionState::kCompleted;
      e.kind = ScheduleEvent::Kind::kComplete;
      schedule_.push_back(e);
      admit_to_complete_ms_.push_back(
          std::chrono::duration<double, std::milli>(wave_end -
                                                    work[i].admitted_at)
              .count());
      messages_delivered_ += outcomes[i].result->messages_delivered;
      completed_.push_back(std::move(*outcomes[i].result));
      meters_.completed->add();
    } else {
      const FailureRecord& f = *outcomes[i].failure;
      e.kind = ScheduleEvent::Kind::kFail;
      e.failure = f.kind;
      schedule_.push_back(e);
      failures_.push_back(f);
      meters_.failed->add();
      const std::size_t next_attempt = entry.attempt + 1;
      if (next_attempt < options_.retry.max_attempts) {
        entry.attempt = next_attempt;
        entry.state = SessionState::kAdmitted;
        entry.eligible_wave =
            this_wave + 1 + options_.retry.backoff_waves(next_attempt);
        ++retries_;
        meters_.retried->add();
        ScheduleEvent r = e;
        r.kind = ScheduleEvent::Kind::kRetry;
        r.attempt = next_attempt;
        r.eligible_wave = entry.eligible_wave;
        schedule_.push_back(r);
      } else {
        entry.state = SessionState::kFailed;
        ScheduleEvent g = e;
        g.kind = ScheduleEvent::Kind::kGiveUp;
        schedule_.push_back(g);
        ++failed_sessions_;
        meters_.failed_sessions->add();
      }
    }
  }
  wave_ = this_wave + 1;
  ++waves_run_;
  evaluate_slo_locked(this_wave);
  set_queue_gauges_locked();
  space_.notify_all();
  return work.size();
}

RuntimeReport SupervisedRuntime::drain() {
  close();
  while (run_wave() != 0) {
  }
  const auto ended = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mu_);
  // No leaked sessions: every admitted entry must be terminal.
  for (const auto& [id, entry] : entries_)
    GFOR14_EXPECTS(entry.state == SessionState::kCompleted ||
                   entry.state == SessionState::kFailed);

  RuntimeReport report;
  report.completed = completed_;
  report.failures = failures_;
  report.schedule = schedule_;
  report.admitted = entries_.size();
  report.completed_sessions = completed_.size();
  report.failed_attempts = failures_.size();
  report.retries = retries_;
  report.waves = waves_run_;
  report.threads = threads();
  report.queue_high_water = high_water_;
  for (const auto& [id, entry] : entries_)
    if (entry.state == SessionState::kFailed) ++report.failed_sessions;
  for (const auto& r : completed_)
    report.messages_delivered += r.messages_delivered;
  if (report.admitted > 0)
    report.retry_rate = static_cast<double>(report.retries) /
                        static_cast<double>(report.admitted);
  report.wall_ms =
      std::chrono::duration<double, std::milli>(ended - started_).count();
  if (report.wall_ms > 0.0)
    report.messages_per_sec =
        static_cast<double>(report.messages_delivered) /
        (report.wall_ms / 1000.0);
  std::vector<double> lat = admit_to_complete_ms_;
  std::sort(lat.begin(), lat.end());
  report.p50_admit_to_complete_ms = percentile_sorted(lat, 0.50);
  report.p95_admit_to_complete_ms = percentile_sorted(lat, 0.95);
  report.slo = slo_.status();
  return report;
}

SloStatus SupervisedRuntime::slo_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slo_.status();
}

}  // namespace gfor14::server
