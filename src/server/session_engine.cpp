#include "server/session_engine.hpp"

#include <algorithm>
#include <chrono>

#include "common/expect.hpp"
#include "common/thread_pool.hpp"

namespace gfor14::server {

namespace {

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

SessionEngine::SessionEngine(EngineOptions options) : options_(options) {}

std::size_t SessionEngine::threads() const {
  return options_.threads == 0 ? default_threads() : options_.threads;
}

std::size_t SessionEngine::submit(SessionConfig config) {
  GFOR14_EXPECTS(!spent_);
  for (const SessionConfig& queued : pending_)
    GFOR14_EXPECTS(queued.id != config.id);
  pending_.push_back(std::move(config));
  return pending_.size() - 1;
}

EngineReport SessionEngine::run_all() {
  GFOR14_EXPECTS(!spent_);
  spent_ = true;

  EngineReport report;
  report.threads = threads();
  report.sessions.resize(pending_.size());

  // One parallel_for, one strand per session: fn(i) is invoked exactly
  // once and writes only its own slot, so the batch inherits the pool's
  // determinism contract wholesale. Session construction happens inside
  // the strand — derive_seeds is a pure function of (master_seed, id), so
  // placement cannot leak between strands.
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool::instance().parallel_for(
      0, pending_.size(), report.threads, [&](std::size_t i) {
        Session session(pending_[i], options_.master_seed);
        report.sessions[i] = session.run();
      });
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::vector<double> latencies;
  latencies.reserve(report.sessions.size());
  for (const SessionResult& r : report.sessions) {
    report.messages_delivered += r.messages_delivered;
    latencies.push_back(r.wall_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_session_ms = percentile(latencies, 0.50);
  report.p95_session_ms = percentile(latencies, 0.95);
  if (report.wall_ms > 0.0)
    report.messages_per_sec =
        static_cast<double>(report.messages_delivered) * 1000.0 /
        report.wall_ms;

  // Belt-and-braces: every session already rolled up at completion, but a
  // recursive root roll-up here makes process totals exact even for scopes
  // someone attached outside the engine's sessions.
  metrics::Registry::instance().roll_up();
  return report;
}

}  // namespace gfor14::server
