#include "server/session_engine.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/expect.hpp"
#include "common/thread_pool.hpp"

namespace gfor14::server {

void finalize_engine_report(EngineReport& report) {
  report.messages_delivered = 0;
  std::vector<double> latencies;
  latencies.reserve(report.sessions.size());
  for (const SessionResult& r : report.sessions) {
    report.messages_delivered += r.messages_delivered;
    latencies.push_back(r.wall_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_session_ms = percentile_sorted(latencies, 0.50);
  report.p95_session_ms = percentile_sorted(latencies, 0.95);
  report.messages_per_sec =
      report.wall_ms > 0.0
          ? static_cast<double>(report.messages_delivered) * 1000.0 /
                report.wall_ms
          : 0.0;
}

SessionEngine::SessionEngine(EngineOptions options) : options_(options) {}

std::size_t SessionEngine::threads() const {
  return options_.threads == 0 ? default_threads() : options_.threads;
}

std::size_t SessionEngine::submit(SessionConfig config) {
  GFOR14_EXPECTS(!spent_);
  for (const SessionConfig& queued : pending_)
    GFOR14_EXPECTS(queued.id != config.id);
  pending_.push_back(std::move(config));
  return pending_.size() - 1;
}

EngineReport SessionEngine::run_all() {
  GFOR14_EXPECTS(!spent_);
  spent_ = true;

  // Batch = supervised runtime with retries/chaos/budgets off and capacity
  // for the whole batch up front: the drain is a single wave, i.e. one
  // parallel_for over the sessions, preserving the original execution
  // shape (and the §13 byte-identity contract) exactly.
  SupervisorOptions sup;
  sup.master_seed = options_.master_seed;
  sup.threads = options_.threads;
  sup.queue_capacity = std::max<std::size_t>(pending_.size(), 1);
  sup.retry.max_attempts = 1;
  SupervisedRuntime runtime(sup);

  const auto t0 = std::chrono::steady_clock::now();
  for (SessionConfig& cfg : pending_) {
    const bool admitted = runtime.try_submit(cfg);
    GFOR14_EXPECTS(admitted);
  }
  RuntimeReport rr = runtime.drain();
  const auto t1 = std::chrono::steady_clock::now();

  EngineReport report;
  report.threads = threads();
  report.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.sessions.resize(pending_.size());

  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < pending_.size(); ++i)
    index_of[pending_[i].id] = i;
  for (SessionResult& r : rr.completed)
    report.sessions[index_of.at(r.config.id)] = std::move(r);
  report.failures = std::move(rr.failures);
  // A failed session's slot stays default-constructed except for the config
  // echo, so callers can still see what was attempted.
  for (const FailureRecord& f : report.failures)
    report.sessions[index_of.at(f.session_id)].config =
        pending_[index_of.at(f.session_id)];

  finalize_engine_report(report);

  // Belt-and-braces: every session already rolled up at completion, but a
  // recursive root roll-up here makes process totals exact even for scopes
  // someone attached outside the engine's sessions.
  metrics::Registry::instance().roll_up();
  return report;
}

}  // namespace gfor14::server
