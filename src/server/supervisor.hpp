// Supervised streaming session runtime (DESIGN.md §14): the long-lived
// replacement for the single-shot batch engine.
//
// Three pieces, one determinism story:
//
//  * Bounded admission queue with backpressure. submit() admits a session
//    while the runtime is running — it blocks while queue_capacity sessions
//    are already admitted-but-unfinished and returns false once admission
//    is closed; try_submit() is the non-blocking variant. Every session
//    walks the lifecycle admitted -> running -> completed | failed, with
//    retries looping failed attempts back to admitted.
//
//  * Crash containment. Every attempt executes through
//    server::run_attempt(), which catches the whole failure taxonomy of
//    net/failure.hpp (RoundLimitExceeded, ProtocolError, ContractViolation,
//    chaos-injected strand crashes, delivery shortfalls, wall deadlines)
//    INSIDE the session — a failing session becomes a FailureRecord
//    carrying the exception kind, the failing round and the blame set, and
//    never an exception propagating out of the runtime or a hung strand.
//    Co-scheduled clean sessions stay byte-identical to their solo
//    baselines (the §13 isolation contract extends across neighbours
//    crashing and retrying).
//
//  * Deterministic retry/backoff. Execution proceeds in logical WAVES: each
//    run_wave() runs every eligible admitted session (admission order)
//    across the thread pool behind one barrier, then schedules retries.
//    A failed attempt with budget left re-enters the queue at wave
//    `current + 1 + min(backoff_base << (attempt-1), backoff_cap)` — capped
//    logical exponential backoff, measured in waves, not wall time. Retries
//    draw a fresh Rng lineage derive_seeds(master_seed, id, attempt).
//    Because failure is a pure function of (config, master_seed, attempt,
//    policy) and wave arithmetic never consults the clock, a fixed
//    (master_seed, policy, admission sequence) replays the exact same
//    admit/fail/retry ScheduleEvent log at ANY thread count — which
//    tests/supervisor_test.cpp pins at 1 vs 4 strands.
//
// Engine health surfaces through the root metrics registry:
// server.{admitted,completed,failed,retried,failed_sessions} counters and
// server.{queue_depth,degraded,slo_breaches} gauges — exported via --prom /
// telemetry. On top sits the declarative SLO layer (slo.hpp): targets from
// SupervisorOptions::slo are re-evaluated at every wave barrier and each
// violated one becomes a structured breach (target, actual, since-wave)
// carried by slo_status() / RuntimeReport::slo and rendered by
// `gfor14-audit top` and the serve summary in place of a bare boolean.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "server/session.hpp"
#include "server/slo.hpp"

namespace gfor14::server {

/// Lifecycle of one admitted session.
enum class SessionState : std::uint8_t {
  kAdmitted,   ///< queued (initial admission or retry backoff elapsed)
  kRunning,    ///< executing inside the current wave
  kCompleted,  ///< an attempt succeeded; result collected
  kFailed,     ///< retry budget exhausted; FailureRecord(s) collected
};
const char* session_state_name(SessionState state);

/// Deterministic retry policy: everything here is logical (attempts, waves,
/// rounds) except wall_deadline_ms, which is an environmental safety net
/// excluded from the schedule-replay contract.
struct RetryPolicy {
  /// Total attempts per session (1 = no retry).
  std::size_t max_attempts = 3;
  /// Waves to wait before retry k is eligible: min(base << (k-1), cap).
  std::size_t backoff_base = 1;
  std::size_t backoff_cap = 8;
  /// Per-attempt round budget (Network watchdog); 0 = unlimited.
  std::size_t round_budget = 0;
  /// Per-attempt wall deadline in ms; 0 = off. Environmental only.
  double wall_deadline_ms = 0.0;
  /// Minimum honest deliveries for success; 0 = off.
  std::size_t min_delivered = 0;
  /// Retries run with the session's fault plan cleared — the transient
  /// infrastructure fault (crashed member) is repaired before the rerun.
  bool drop_faults_on_retry = true;

  /// Backoff in waves before attempt `attempt` (>= 1) becomes eligible.
  std::size_t backoff_waves(std::size_t attempt) const;
};

/// Deterministic chaos injection for churn soak: selected sessions get a
/// strand crash (net::InjectedCrash thrown at a round barrier) on their
/// early attempts. The crash round is a pure function of
/// (master_seed, session_id, attempt), so chaos replays with the schedule.
struct ChaosOptions {
  bool enabled = false;
  /// Sessions with id % every == 0 crash (every = 1 crashes all).
  std::size_t every = 3;
  /// Inject only on attempts < crash_attempts (so retries can succeed).
  std::size_t crash_attempts = 1;
  /// Crash round drawn uniformly from [min_round, max_round).
  std::size_t min_round = 2;
  std::size_t max_round = 10;
};

/// The crash round chaos would inject for (session, attempt), or nullopt.
/// Pure function of (options, master_seed, session_id, attempt).
std::optional<std::size_t> chaos_crash_round(const ChaosOptions& chaos,
                                             std::uint64_t master_seed,
                                             std::uint64_t session_id,
                                             std::size_t attempt);

struct SupervisorOptions {
  /// Root of every session's Rng lineage
  /// (seeds = derive_seeds(master, id, attempt)).
  std::uint64_t master_seed = 20140715;
  /// Concurrent session strands per wave; 0 selects
  /// common::default_threads() (GFOR14_THREADS / CLI --threads).
  std::size_t threads = 0;
  /// Bounded admission queue: submit() blocks while this many sessions are
  /// admitted-but-unfinished.
  std::size_t queue_capacity = 64;
  RetryPolicy retry;
  ChaosOptions chaos;
  /// Declarative health targets, re-evaluated at every wave barrier
  /// (slo.hpp). The default block checks nothing.
  SloTargets slo;
};

/// One entry of the replayable admit/fail/retry schedule. The sequence of
/// events (and every field except nothing — wall time is never recorded
/// here) is a pure function of (master_seed, policy, chaos, admission
/// sequence); format_schedule() renders it canonically for comparison.
struct ScheduleEvent {
  enum class Kind : std::uint8_t {
    kAdmit,     ///< session entered the queue
    kComplete,  ///< attempt succeeded
    kFail,      ///< attempt failed (contained); retry may follow
    kRetry,     ///< failed session re-queued for a later wave
    kGiveUp,    ///< retry budget exhausted; session permanently failed
  };
  Kind kind = Kind::kAdmit;
  std::size_t wave = 0;  ///< wave the event was recorded in
  std::uint64_t session_id = 0;
  std::size_t attempt = 0;
  /// kRetry: the wave the retry becomes eligible at.
  std::size_t eligible_wave = 0;
  /// kFail / kGiveUp: the contained failure's taxonomy kind.
  net::FailureKind failure = net::FailureKind::kUnknownException;
};
const char* schedule_event_name(ScheduleEvent::Kind kind);
/// One line per event, canonical — equal strings == equal schedules.
std::string format_schedule(const std::vector<ScheduleEvent>& events);

/// Everything one drained runtime produced. `completed`, `failures` and
/// `schedule` are deterministic (given the admission sequence); wall/latency
/// fields are environmental.
struct RuntimeReport {
  /// Successful sessions in completion order — (wave, admission) order,
  /// which is thread-count independent.
  std::vector<SessionResult> completed;
  /// Every contained failed attempt, in (wave, admission) order.
  std::vector<FailureRecord> failures;
  std::vector<ScheduleEvent> schedule;
  std::size_t admitted = 0;
  std::size_t completed_sessions = 0;
  std::size_t failed_sessions = 0;   ///< gave up after max_attempts
  std::size_t failed_attempts = 0;   ///< == failures.size()
  std::size_t retries = 0;
  std::size_t waves = 0;
  std::size_t threads = 0;
  std::size_t queue_high_water = 0;  ///< max queue depth observed
  std::size_t messages_delivered = 0;
  double retry_rate = 0.0;  ///< retries / admitted (deterministic)
  // Environmental:
  double wall_ms = 0.0;  ///< runtime construction -> drain return
  double messages_per_sec = 0.0;  ///< 0 when wall_ms == 0 (never inf/NaN)
  double p50_admit_to_complete_ms = 0.0;
  double p95_admit_to_complete_ms = 0.0;
  /// Structured health at drain time: every still-violated target with its
  /// since-wave anchor. The deterministic breaches (retry_rate,
  /// honest_delivery) replay at any thread count; the environmental ones
  /// (round wall, throughput) do not.
  SloStatus slo;
};

/// q-quantile of an ascending-sorted sample (nearest-rank with rounding);
/// 0 on an empty sample — shared by the runtime and engine report math.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// The supervised streaming runtime. Admission is thread-safe (feeders may
/// submit from any thread, with blocking backpressure); wave execution is
/// driven from ONE caller thread via run_wave()/drain() — the waves
/// themselves fan out over the shared ThreadPool. NOTE: a thread driving
/// waves must use try_submit (blocking submit from the wave thread would
/// wait on itself).
class SupervisedRuntime {
 public:
  explicit SupervisedRuntime(SupervisorOptions options = {});
  ~SupervisedRuntime();

  SupervisedRuntime(const SupervisedRuntime&) = delete;
  SupervisedRuntime& operator=(const SupervisedRuntime&) = delete;

  const SupervisorOptions& options() const { return options_; }
  std::size_t threads() const;

  /// Blocking bounded admission: waits while the queue is full, returns
  /// false once admission is closed. Session ids must be unique over the
  /// runtime's lifetime (lineage + scope identity) — duplicates throw.
  bool submit(SessionConfig config);
  /// Non-blocking admission: false when the queue is full or closed.
  bool try_submit(SessionConfig config);
  /// Closes admission: subsequent submits return false, blocked submitters
  /// wake and return false. Draining continues until the queue empties.
  void close();

  /// Sessions admitted but not yet completed/failed.
  std::size_t queue_depth() const;
  /// Highest queue depth ever observed.
  std::size_t queue_high_water() const;
  /// Lifecycle state; throws for an id never admitted.
  SessionState state_of(std::uint64_t id) const;
  /// True when no session is admitted or running (retry backlog included).
  bool idle() const;

  /// Runs one logical wave on the calling thread: every eligible admitted
  /// session executes across the pool behind one barrier, outcomes are
  /// recorded, retries scheduled. Returns the number of attempts executed
  /// (0 when the queue holds no work at all; a backlog of future-wave
  /// retries fast-forwards the wave counter instead of spinning).
  std::size_t run_wave();

  /// Closes admission, runs waves until the queue is empty, and returns the
  /// final report. Every admitted session is guaranteed terminal
  /// (completed or failed) in the report — no leaked sessions.
  RuntimeReport drain();

  /// Structured health as of the last wave barrier (or the initial empty
  /// status before any wave ran).
  SloStatus slo_status() const;

 private:
  struct Entry {
    SessionConfig config;
    SessionState state = SessionState::kAdmitted;
    std::size_t attempt = 0;        ///< next attempt to execute
    std::size_t eligible_wave = 0;  ///< earliest wave the entry may run in
    std::size_t admission_index = 0;
    std::chrono::steady_clock::time_point admitted_at;
  };

  bool admit_locked(SessionConfig&& config, std::unique_lock<std::mutex>&);
  std::size_t pending_locked() const;
  void set_queue_gauges_locked();
  /// Re-evaluates the SLO targets against live scoped metrics at a wave
  /// barrier and updates the server.slo_breaches gauge.
  void evaluate_slo_locked(std::size_t wave);
  AttemptSpec make_attempt_spec(const Entry& entry) const;

  SupervisorOptions options_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  std::condition_variable space_;
  bool closed_ = false;
  bool draining_wave_ = false;
  std::size_t wave_ = 0;
  std::size_t waves_run_ = 0;
  std::size_t admission_counter_ = 0;
  std::size_t high_water_ = 0;
  std::map<std::uint64_t, Entry> entries_;  ///< every id ever admitted
  std::vector<ScheduleEvent> schedule_;
  std::vector<SessionResult> completed_;
  std::vector<FailureRecord> failures_;
  std::vector<double> admit_to_complete_ms_;
  std::size_t retries_ = 0;
  std::size_t failed_sessions_ = 0;      ///< give-ups so far
  std::size_t messages_delivered_ = 0;   ///< across completed sessions
  SloMonitor slo_;

  /// Root-registry health counters/gauges, resolved at construction.
  struct Meters {
    metrics::Counter* admitted = nullptr;
    metrics::Counter* completed = nullptr;
    metrics::Counter* failed = nullptr;
    metrics::Counter* retried = nullptr;
    metrics::Counter* failed_sessions = nullptr;
    metrics::Gauge* queue_depth = nullptr;
    metrics::Gauge* degraded = nullptr;
    metrics::Gauge* slo_breaches = nullptr;
  };
  Meters meters_;
};

}  // namespace gfor14::server
