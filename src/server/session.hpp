// One logical AnonChan session inside the multi-session server (DESIGN.md
// §13): a self-contained protocol execution with its own Network, Rng
// lineage, fault plan, flight recorder and scoped metrics registry.
//
// A Session owns NOTHING shared: every piece of mutable protocol state —
// party RNGs, pending queues, fault engine, recorder — is private to the
// session, so any number of sessions may execute concurrently (on the
// common::ThreadPool, via server::SessionEngine) without observing each
// other. The only cross-session state is immutable-after-insert pure-value
// caches (LagrangeCache / EncodePlan tables) and the atomic metrics
// counters, neither of which can carry information INTO a transcript. The
// isolation contract this buys is the one the differential suite
// (tests/session_engine_test.cpp) pins down: a session's delivered
// transcript, CostReport, blame/fault logs and scoped net./vss. counters
// are byte-identical whether the session runs alone on an idle process or
// interleaved with any mix of other sessions at any engine thread count.
//
// Rng lineage: all of a session's randomness derives from
// derive_seeds(master_seed, id, attempt) — a fresh fork of the master
// stream keyed by the session id (and, for supervised retries, re-forked by
// the attempt number), independent of submission order and of every other
// session's draws. Attempt 0 is byte-identical to the pre-supervision
// two-argument lineage, so existing recordings stay replayable. Two
// sessions share entropy only if they share an id, which
// SessionEngine::submit rejects.
//
// Supervised (contained) execution — DESIGN.md §14: run_attempt() executes
// one attempt of a session with every defined failure mode caught INSIDE
// the call, while the session's Network is still alive, and folded into a
// structured FailureRecord (exception taxonomy kind, failing round, blame
// set). The supervisor (supervisor.hpp) builds its crash-containment and
// retry story entirely on this primitive.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "anonchan/anonchan.hpp"
#include "anonchan/params.hpp"
#include "audit/replay.hpp"
#include "common/metrics.hpp"
#include "net/failure.hpp"
#include "net/faultplan.hpp"
#include "net/network.hpp"
#include "net/recorder.hpp"
#include "vss/schemes.hpp"

namespace gfor14::server {

/// Everything that defines one logical session. Plain data; the engine
/// copies it into the session and echoes it back in the result.
struct SessionConfig {
  std::uint64_t id = 0;  ///< unique per engine run: scope name + Rng lineage
  std::size_t n = 5;
  vss::SchemeKind scheme = vss::SchemeKind::kRB;
  std::size_t kappa = 3;     ///< cut-and-choose copies (practical profile)
  bool light = false;        ///< use Params::light(n) instead of practical
  /// Receiver party; SIZE_MAX selects n - 1.
  net::PartyId receiver = static_cast<net::PartyId>(-1);
  /// Per-party inputs; empty selects the canonical pattern (distinct
  /// non-zero message per sender, zero for the receiver).
  std::vector<Fld> inputs;
  /// Wire-fault script for this session; parties it targets are marked
  /// corrupt. Empty = clean session (strict no-op, no engine attached).
  net::FaultPlan faults;
  /// Explicit fault-engine seed; nullopt derives it from the Rng lineage.
  std::optional<std::uint64_t> fault_seed;
  /// Worker lanes for the session's own round engine. When the session is
  /// co-scheduled with others the nested parallel_for runs inline (the
  /// pool forbids two parallel levels), which is transcript-equivalent by
  /// the DESIGN.md §8 lane-count-independence contract.
  std::size_t lanes = 1;
  bool record_payloads = true;  ///< full-fidelity vs header-only recording
  /// Metrics scope name under the process root; "" = "session/<id>".
  std::string scope_label;

  net::PartyId effective_receiver() const {
    return receiver == static_cast<net::PartyId>(-1)
               ? static_cast<net::PartyId>(n - 1)
               : receiver;
  }
  anonchan::Params params() const;
  std::vector<Fld> effective_inputs() const;
  std::string effective_scope_label() const;
};

/// The session's independent randomness, forked from the engine master
/// seed by session id and attempt number. Pure function of
/// (master_seed, id, attempt): independent of submission order, scheduling,
/// and every other session's draws. Attempt 0 reproduces the original
/// two-argument lineage exactly.
struct SessionSeeds {
  std::uint64_t net_seed = 0;    ///< Network seed (per-party Rng lineage)
  std::uint64_t fault_seed = 0;  ///< FaultEngine seed (unless pinned)
};
SessionSeeds derive_seeds(std::uint64_t master_seed, std::uint64_t session_id,
                          std::size_t attempt = 0);

/// One execution attempt's supervision envelope (DESIGN.md §14): which
/// attempt of the session this is (selects the Rng lineage) plus the
/// containment limits the supervisor imposes. Plain data, deterministic —
/// the supervisor derives it purely from (policy, session id, attempt).
struct AttemptSpec {
  std::size_t attempt = 0;
  /// Per-attempt round budget enforced by the Network watchdog; the attempt
  /// dies with a kRoundLimit FailureRecord when exceeded. 0 = unlimited.
  std::size_t round_budget = 0;
  /// Chaos injection: throw net::InjectedCrash after this many round
  /// barriers, simulating the session strand dying mid-run.
  std::optional<std::size_t> crash_at_round;
  /// Run this attempt with the config's fault plan cleared (retry policy's
  /// "crashed member replaced" model).
  bool drop_faults = false;
  /// Minimum honest deliveries for the attempt to count as success; a
  /// completed run below this fails with kDeliveryShortfall. 0 = off.
  std::size_t min_delivered = 0;
  /// Per-attempt wall-clock ceiling (environmental safety net, never part
  /// of determinism claims); exceeding it fails with kDeadlineExceeded.
  /// 0 = off.
  double wall_deadline_ms = 0.0;
};

/// Structured containment record of one failed attempt: what died, where,
/// and who the session blamed before dying. This is the supervisor's whole
/// interface to failure — a supervised session NEVER propagates an
/// exception past run_attempt().
struct FailureRecord {
  std::uint64_t session_id = 0;
  std::size_t attempt = 0;
  net::FailureKind kind = net::FailureKind::kUnknownException;
  std::string what;               ///< exception message / shortfall note
  std::size_t failing_round = 0;  ///< Network costs().rounds at failure
  /// Distinct accused parties from the session's blame records at failure
  /// time, ascending (kPublicBlame excluded — it names the same parties).
  std::vector<net::PartyId> blamed;
  double wall_ms = 0.0;  ///< environmental, never compared

  std::string describe() const;
};

/// Everything one completed session produced.
struct SessionResult {
  SessionConfig config;  ///< the config as EXECUTED (faults may be dropped)
  SessionSeeds seeds;
  std::size_t attempt = 0;  ///< lineage attempt that produced this result
  anonchan::Output output;
  net::CostReport costs;          ///< this session's own network, from zero
  net::Recording recording;       ///< full per-session transcript
  std::uint64_t transcript_digest = 0;
  std::vector<net::BlameRecord> blames;
  std::vector<net::FaultEvent> fault_events;
  /// Name-sorted counters of the session's metrics scope after the final
  /// roll-up — the deterministic per-session attribution (net.*, vss.*).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::size_t messages_delivered = 0;  ///< honest inputs present in Y
  double wall_ms = 0.0;                ///< environmental, never compared
  std::string scope_name;
};

/// Exactly one of result / failure is set.
struct SessionOutcome {
  std::optional<SessionResult> result;
  std::optional<FailureRecord> failure;
  bool ok() const { return result.has_value(); }
};

/// Executes ONE supervised attempt of a session: attaches the session's
/// metrics scope, builds the private Network/VSS/AnonChan stack with the
/// (master_seed, id, attempt) Rng lineage, applies the AttemptSpec's
/// containment limits, and catches every failure (taxonomy of
/// net/failure.hpp) into a FailureRecord while the Network is still alive —
/// so the record carries the failing round and the blame set. With a
/// default AttemptSpec the success path is byte-identical to
/// Session::run(). Thread-safe in the same sense as Session::run(): may be
/// called from any pool strand.
SessionOutcome run_attempt(const SessionConfig& config,
                           std::uint64_t master_seed, const AttemptSpec& spec);

/// One runnable session. Construction only captures configuration; run()
/// performs the whole protocol execution on the calling thread (plus the
/// session's own lanes when not nested) and may be invoked from a pool
/// strand — everything it touches is session-private or thread-safe.
class Session {
 public:
  Session(SessionConfig config, std::uint64_t master_seed);

  const SessionConfig& config() const { return config_; }
  const SessionSeeds& seeds() const { return seeds_; }

  /// Executes the session: attaches its metrics scope to the calling
  /// thread, builds the Network/VSS/AnonChan stack inside that attachment,
  /// runs one full channel invocation, rolls the scope up into the process
  /// root and returns the collected result. A Session is single-use.
  /// Uncontained: exceptions propagate (use run_attempt for supervision).
  SessionResult run();

 private:
  SessionConfig config_;
  std::uint64_t master_seed_ = 0;
  SessionSeeds seeds_;
  bool spent_ = false;
};

/// Re-executes a result's configuration solo (fresh Network, same
/// (id, attempt) lineage, serial engine context) with a ReplayVerifier
/// attached and returns the first divergence from the recorded transcript —
/// nullopt certifies that the co-scheduled execution was byte-identical to
/// an isolated one. This is the per-session audit hook the CLI's
/// `serve --verify` and the session-soak CI job call.
std::optional<audit::Divergence> replay_verify(const SessionResult& result,
                                               std::uint64_t master_seed);

}  // namespace gfor14::server
