// One logical AnonChan session inside the multi-session server (DESIGN.md
// §13): a self-contained protocol execution with its own Network, Rng
// lineage, fault plan, flight recorder and scoped metrics registry.
//
// A Session owns NOTHING shared: every piece of mutable protocol state —
// party RNGs, pending queues, fault engine, recorder — is private to the
// session, so any number of sessions may execute concurrently (on the
// common::ThreadPool, via server::SessionEngine) without observing each
// other. The only cross-session state is immutable-after-insert pure-value
// caches (LagrangeCache / EncodePlan tables) and the atomic metrics
// counters, neither of which can carry information INTO a transcript. The
// isolation contract this buys is the one the differential suite
// (tests/session_engine_test.cpp) pins down: a session's delivered
// transcript, CostReport, blame/fault logs and scoped net./vss. counters
// are byte-identical whether the session runs alone on an idle process or
// interleaved with any mix of other sessions at any engine thread count.
//
// Rng lineage: all of a session's randomness derives from
// derive_seeds(master_seed, id) — a fresh fork of the master stream keyed
// by the session id, independent of submission order and of every other
// session's draws. Two sessions share entropy only if they share an id,
// which SessionEngine::submit rejects.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "anonchan/anonchan.hpp"
#include "anonchan/params.hpp"
#include "audit/replay.hpp"
#include "common/metrics.hpp"
#include "net/faultplan.hpp"
#include "net/network.hpp"
#include "net/recorder.hpp"
#include "vss/schemes.hpp"

namespace gfor14::server {

/// Everything that defines one logical session. Plain data; the engine
/// copies it into the session and echoes it back in the result.
struct SessionConfig {
  std::uint64_t id = 0;  ///< unique per engine run: scope name + Rng lineage
  std::size_t n = 5;
  vss::SchemeKind scheme = vss::SchemeKind::kRB;
  std::size_t kappa = 3;     ///< cut-and-choose copies (practical profile)
  bool light = false;        ///< use Params::light(n) instead of practical
  /// Receiver party; SIZE_MAX selects n - 1.
  net::PartyId receiver = static_cast<net::PartyId>(-1);
  /// Per-party inputs; empty selects the canonical pattern (distinct
  /// non-zero message per sender, zero for the receiver).
  std::vector<Fld> inputs;
  /// Wire-fault script for this session; parties it targets are marked
  /// corrupt. Empty = clean session (strict no-op, no engine attached).
  net::FaultPlan faults;
  /// Explicit fault-engine seed; nullopt derives it from the Rng lineage.
  std::optional<std::uint64_t> fault_seed;
  /// Worker lanes for the session's own round engine. When the session is
  /// co-scheduled with others the nested parallel_for runs inline (the
  /// pool forbids two parallel levels), which is transcript-equivalent by
  /// the DESIGN.md §8 lane-count-independence contract.
  std::size_t lanes = 1;
  bool record_payloads = true;  ///< full-fidelity vs header-only recording
  /// Metrics scope name under the process root; "" = "session/<id>".
  std::string scope_label;

  net::PartyId effective_receiver() const {
    return receiver == static_cast<net::PartyId>(-1)
               ? static_cast<net::PartyId>(n - 1)
               : receiver;
  }
  anonchan::Params params() const;
  std::vector<Fld> effective_inputs() const;
  std::string effective_scope_label() const;
};

/// The session's independent randomness, forked from the engine master
/// seed by session id. Pure function of (master_seed, id): independent of
/// submission order, scheduling, and every other session's draws.
struct SessionSeeds {
  std::uint64_t net_seed = 0;    ///< Network seed (per-party Rng lineage)
  std::uint64_t fault_seed = 0;  ///< FaultEngine seed (unless pinned)
};
SessionSeeds derive_seeds(std::uint64_t master_seed, std::uint64_t session_id);

/// Everything one completed session produced.
struct SessionResult {
  SessionConfig config;
  SessionSeeds seeds;
  anonchan::Output output;
  net::CostReport costs;          ///< this session's own network, from zero
  net::Recording recording;       ///< full per-session transcript
  std::uint64_t transcript_digest = 0;
  std::vector<net::BlameRecord> blames;
  std::vector<net::FaultEvent> fault_events;
  /// Name-sorted counters of the session's metrics scope after the final
  /// roll-up — the deterministic per-session attribution (net.*, vss.*).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::size_t messages_delivered = 0;  ///< honest inputs present in Y
  double wall_ms = 0.0;                ///< environmental, never compared
  std::string scope_name;
};

/// One runnable session. Construction only captures configuration; run()
/// performs the whole protocol execution on the calling thread (plus the
/// session's own lanes when not nested) and may be invoked from a pool
/// strand — everything it touches is session-private or thread-safe.
class Session {
 public:
  Session(SessionConfig config, std::uint64_t master_seed);

  const SessionConfig& config() const { return config_; }
  const SessionSeeds& seeds() const { return seeds_; }

  /// Executes the session: attaches its metrics scope to the calling
  /// thread, builds the Network/VSS/AnonChan stack inside that attachment,
  /// runs one full channel invocation, rolls the scope up into the process
  /// root and returns the collected result. A Session is single-use.
  SessionResult run();

 private:
  SessionConfig config_;
  std::uint64_t master_seed_ = 0;
  SessionSeeds seeds_;
  bool spent_ = false;
};

/// Re-executes a result's configuration solo (fresh Network, same lineage,
/// serial engine context) with a ReplayVerifier attached and returns the
/// first divergence from the recorded transcript — nullopt certifies that
/// the co-scheduled execution was byte-identical to an isolated one. This
/// is the per-session audit hook the CLI's `serve --verify` and the
/// session-soak CI job call.
std::optional<audit::Divergence> replay_verify(const SessionResult& result,
                                               std::uint64_t master_seed);

}  // namespace gfor14::server
