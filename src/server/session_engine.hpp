// Batch facade over the supervised session runtime (DESIGN.md §13/§14).
//
// SessionEngine keeps the original submit-then-run_all batch API but is now
// a thin wrapper over server::SupervisedRuntime: run_all() admits every
// queued session into a runtime configured with max_attempts = 1 (no
// retries, no chaos, no budgets) and drains it. An all-up-front admission
// with no failures is exactly one wave — one ThreadPool::parallel_for over
// the batch — so the execution shape, and with it the §13 interleaving-
// determinism contract, is unchanged:
//
//   Interleaving determinism. For every submitted session, the transcript
//   digest, Recording, CostReport, blame/fault logs and scoped counters in
//   EngineReport.sessions[i] are byte-identical to the same SessionConfig
//   run alone via Session::run(), at ANY engine thread count and ANY
//   co-scheduled session mix. Only wall-clock fields vary.
//
// Containment semantics (new): a session that dies no longer propagates its
// exception out of run_all() — it surfaces as a FailureRecord in
// EngineReport.failures and its EngineReport.sessions slot is left
// default-constructed (recording empty, config echoed). Batches of clean
// sessions — every existing caller — behave exactly as before.
#pragma once

#include <cstdint>
#include <vector>

#include "server/supervisor.hpp"

namespace gfor14::server {

struct EngineOptions {
  /// Root of every session's Rng lineage (seeds = derive_seeds(master, id)).
  std::uint64_t master_seed = 20140715;
  /// Concurrent session strands; 0 selects common::default_threads()
  /// (GFOR14_THREADS / CLI --threads).
  std::size_t threads = 0;
};

/// What one run_all() produced. Per-session payloads are deterministic;
/// the wall_ms / latency / throughput aggregates are environmental.
struct EngineReport {
  std::vector<SessionResult> sessions;  ///< submission order
  /// Contained failures (sessions whose slot above is a placeholder).
  std::vector<FailureRecord> failures;
  std::size_t threads = 0;              ///< strands actually requested
  double wall_ms = 0.0;                 ///< whole-batch wall clock
  std::size_t messages_delivered = 0;   ///< sum of honest deliveries
  double messages_per_sec = 0.0;        ///< delivered / wall seconds
  double p50_session_ms = 0.0;          ///< median session latency
  double p95_session_ms = 0.0;          ///< tail session latency
};

/// Fills the aggregate fields (messages_delivered, messages_per_sec,
/// p50/p95 latency) from report.sessions and report.wall_ms, already set by
/// the caller. Total function: empty batches and zero/negative wall clocks
/// yield 0 rates — never inf or NaN (tests/supervisor_test.cpp pins this).
void finalize_engine_report(EngineReport& report);

class SessionEngine {
 public:
  explicit SessionEngine(EngineOptions options = {});

  std::uint64_t master_seed() const { return options_.master_seed; }
  std::size_t threads() const;
  std::size_t session_count() const { return pending_.size(); }

  /// Queues one session; returns its index in EngineReport.sessions.
  /// Duplicate session ids are rejected (they would share Rng lineage and
  /// a metrics scope), as is submitting after run_all().
  std::size_t submit(SessionConfig config);

  /// Executes every submitted session across the engine's strands and
  /// returns the aggregated report. Single-use.
  EngineReport run_all();

 private:
  EngineOptions options_;
  std::vector<SessionConfig> pending_;
  bool spent_ = false;
};

}  // namespace gfor14::server
