// Session-multiplexing engine (DESIGN.md §13): schedules many independent
// server::Session executions over the shared common::ThreadPool and
// aggregates their results into a throughput report.
//
// Scheduling model: run_all() issues exactly ONE ThreadPool::parallel_for
// over the submitted sessions, so every session executes wholly inside one
// pool strand. Per-session lane parallelism (SessionConfig::lanes) nests
// inside that strand and therefore runs inline — the pool forbids two live
// parallel levels — which is transcript-equivalent by the lane-count-
// independence contract of DESIGN.md §8. The pool's determinism contract
// (fn(i) called exactly once, writes to disjoint slots) plus the sessions'
// order-independent Rng lineage give the engine's own contract:
//
//   Interleaving determinism. For every submitted session, the transcript
//   digest, Recording, CostReport, blame/fault logs and scoped counters in
//   EngineReport.sessions[i] are byte-identical to the same SessionConfig
//   run alone via Session::run(), at ANY engine thread count and ANY
//   co-scheduled session mix. Only wall-clock fields vary.
//
// Metric roll-up points: each session rolls its scope up at every round
// barrier (Network) and once at completion (Session::run); run_all performs
// one final recursive root roll-up so process totals are exact when the
// report is returned.
#pragma once

#include <cstdint>
#include <vector>

#include "server/session.hpp"

namespace gfor14::server {

struct EngineOptions {
  /// Root of every session's Rng lineage (seeds = derive_seeds(master, id)).
  std::uint64_t master_seed = 20140715;
  /// Concurrent session strands; 0 selects common::default_threads()
  /// (GFOR14_THREADS / CLI --threads).
  std::size_t threads = 0;
};

/// What one run_all() produced. Per-session payloads are deterministic;
/// the wall_ms / latency / throughput aggregates are environmental.
struct EngineReport {
  std::vector<SessionResult> sessions;  ///< submission order
  std::size_t threads = 0;              ///< strands actually requested
  double wall_ms = 0.0;                 ///< whole-batch wall clock
  std::size_t messages_delivered = 0;   ///< sum of honest deliveries
  double messages_per_sec = 0.0;        ///< delivered / wall seconds
  double p50_session_ms = 0.0;          ///< median session latency
  double p95_session_ms = 0.0;          ///< tail session latency
};

class SessionEngine {
 public:
  explicit SessionEngine(EngineOptions options = {});

  std::uint64_t master_seed() const { return options_.master_seed; }
  std::size_t threads() const;
  std::size_t session_count() const { return pending_.size(); }

  /// Queues one session; returns its index in EngineReport.sessions.
  /// Duplicate session ids are rejected (they would share Rng lineage and
  /// a metrics scope), as is submitting after run_all().
  std::size_t submit(SessionConfig config);

  /// Executes every submitted session across the engine's strands and
  /// returns the aggregated report. Single-use.
  EngineReport run_all();

 private:
  EngineOptions options_;
  std::vector<SessionConfig> pending_;
  bool spent_ = false;
};

}  // namespace gfor14::server
