// Information-checking protocol (ICP) — Rabin's check vectors.
//
// The three-party primitive underlying Rabin–Ben-Or-style statistical VSS:
// a dealer D hands an intermediary INT a value s that INT will later reveal
// to a recipient R, such that
//   * a forged reveal s' != s is accepted by R with probability at most
//     1/(|F| - 1)  (unforgeability, information-theoretic);
//   * an honest INT's reveal is always accepted (correctness);
//   * R learns nothing about s before the reveal (privacy);
//   * tags for values authenticated under the same (D, INT, R) key combine
//     linearly: the tag of a linear combination of values is the same
//     combination of tags (with the matching combination of the b-offsets
//     on R's side), which is what makes the enclosing VSS linear.
//
// Mechanics: D draws a key (a, b) with a != 0, gives R the key and INT the
// tag y = a * s + b alongside s. To reveal, INT sends (s, y); R accepts iff
// y == a * s + b. D reuses `a` (fresh `b`) across a batch so that linear
// combinations verify, exactly as in [Rab94].
//
// This file is the *concrete* implementation of the layer that the VSS
// engine idealizes at reconstruction time (see bivariate_engine.hpp);
// tests/vss_icp_test.cpp validates each guarantee, including the measured
// forgery success rate against the 1/(|F|-1) bound.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "ff/gf2e.hpp"

namespace gfor14::vss {

/// Recipient-side verification key. `a` is shared across a batch; each
/// value has its own offset b.
struct IcpKey {
  Fld a;                 // non-zero
  std::vector<Fld> b;    // one offset per authenticated value
};

/// Intermediary-side authenticated batch: values and their tags.
struct IcpAuth {
  std::vector<Fld> values;
  std::vector<Fld> tags;  // tags[k] = a * values[k] + b[k]
};

/// One reveal: the value and tag the intermediary presents.
struct IcpReveal {
  Fld value;
  Fld tag;
};

/// Dealer step: authenticate `values` toward one recipient. Consumes
/// dealer randomness; returns the intermediary's and recipient's states.
struct IcpIssued {
  IcpAuth auth;  // to the intermediary (with the values)
  IcpKey key;    // to the recipient
};
IcpIssued icp_issue(Rng& dealer_rng, const std::vector<Fld>& values);

/// Intermediary step: the reveal message for value k.
IcpReveal icp_reveal(const IcpAuth& auth, std::size_t k);

/// Intermediary step: reveal of a linear combination sum_k coeffs[k] *
/// values[k] — tags combine locally, no dealer involvement.
IcpReveal icp_reveal_combined(const IcpAuth& auth,
                              const std::vector<Fld>& coeffs);

/// Recipient step: verification of a single-value reveal.
bool icp_verify(const IcpKey& key, std::size_t k, const IcpReveal& reveal);

/// Recipient step: verification of a combined reveal (recipient combines
/// its offsets with the same public coefficients).
bool icp_verify_combined(const IcpKey& key, const std::vector<Fld>& coeffs,
                         const IcpReveal& reveal);

}  // namespace gfor14::vss
