// The information-checking protocol as an actual three-party NETWORK
// protocol (dealer D, intermediary INT, recipient R) over the simulator —
// the round-accounted counterpart of the pure algebra in icp.hpp, matching
// the [Rab94] flow:
//
//   Distribution (1 round):  D -> INT: the values and their tags;
//                            D -> R:   the check-vector keys.
//   Consistency  (2 rounds): INT and R blind-compare a random linear
//                            combination of tags vs keys (INT sends a
//                            random-coefficient challenge, R answers with
//                            the combined offset), so an inconsistent D is
//                            caught at distribution time rather than at
//                            reveal time. Any mismatch publicly faults D
//                            (1 broadcast).
//   Reveal       (1 round):  INT -> R: (value, tag); R verifies locally.
//
// Guarantees (validated in tests): an honest INT's reveal is always
// accepted when D was consistent; a forged reveal passes with probability
// 1/(|F|-1); a D that distributes mismatched tags/keys is publicly
// identified during consistency checking (except with probability 1/|F|).
#pragma once

#include "net/network.hpp"
#include "vss/icp.hpp"

namespace gfor14::vss {

/// One ICP instance bound to three distinct parties on a network.
class IcpSession {
 public:
  IcpSession(net::Network& net, net::PartyId dealer, net::PartyId intermediary,
             net::PartyId recipient);

  /// Dealer misbehaviour switch for the distribution phase.
  enum class DealerMode {
    kHonest,
    kMismatchedTags,  ///< tags do not match the keys given to R
  };

  /// Runs distribution + consistency. Returns true when the consistency
  /// check passed (an honest dealer always passes; a kMismatchedTags
  /// dealer is caught w.h.p. and publicly faulted).
  bool distribute(const std::vector<Fld>& values,
                  DealerMode mode = DealerMode::kHonest);

  /// Whether the dealer was publicly faulted during consistency checking.
  bool dealer_faulted() const { return faulted_; }

  /// Reveal phase for value k; `forge_delta` != 0 makes the intermediary
  /// reveal values[k] + forge_delta with its best (unchanged) tag.
  /// Returns the recipient's verdict.
  bool reveal(std::size_t k, Fld forge_delta = Fld::zero());

  /// Reveal of a public linear combination (the linearity the enclosing
  /// VSS consumes); same forging switch.
  bool reveal_combined(const std::vector<Fld>& coeffs,
                       Fld forge_delta = Fld::zero());

  const net::CostReport& distribution_costs() const { return dist_costs_; }

 private:
  net::Network& net_;
  net::PartyId dealer_, int_, rcpt_;
  bool faulted_ = false;
  std::size_t count_ = 0;
  // Party-local states (held by INT and R respectively).
  IcpAuth int_auth_;
  IcpKey rcpt_key_;
  net::CostReport dist_costs_;
};

}  // namespace gfor14::vss
