#include "vss/dissemination.hpp"

#include "common/expect.hpp"
#include "math/berlekamp_welch.hpp"

namespace gfor14::vss {

std::size_t dissemination_chunk(std::size_t n, std::size_t t) {
  GFOR14_EXPECTS(n > 2 * t);
  return n - 2 * t;
}

std::size_t dissemination_elements_coded(std::size_t m, std::size_t n,
                                         std::size_t t) {
  const std::size_t chunk = dissemination_chunk(n, t);
  const std::size_t codewords = (m + chunk - 1) / chunk;
  // Each party echoes one evaluation per codeword to everyone.
  return codewords * n * (n - 1);
}

std::size_t dissemination_elements_naive(std::size_t m, std::size_t n) {
  return m * n * (n - 1);
}

DisseminationResult disseminate(net::Network& net, net::PartyId dealer,
                                const std::vector<Fld>& vector_data,
                                bool garble_corrupt_echoes) {
  const std::size_t n = net.n();
  const std::size_t t = net.max_t_third();
  GFOR14_EXPECTS(dealer < n);
  GFOR14_EXPECTS(!vector_data.empty());
  const auto before = net.cost_snapshot();

  const std::size_t chunk = dissemination_chunk(n, t);
  const std::size_t degree = chunk - 1;
  const std::size_t codewords = (vector_data.size() + chunk - 1) / chunk;

  // Encode: codeword c is the polynomial whose coefficients are the c-th
  // chunk (zero-padded); party i's symbol is its evaluation at alpha_i.
  std::vector<Poly> polys;
  polys.reserve(codewords);
  for (std::size_t c = 0; c < codewords; ++c) {
    std::vector<Fld> coeffs(chunk, Fld::zero());
    for (std::size_t j = 0; j < chunk; ++j) {
      const std::size_t idx = c * chunk + j;
      if (idx < vector_data.size()) coeffs[j] = vector_data[idx];
    }
    polys.emplace_back(std::move(coeffs));
  }

  // Round 1: dealer -> P_i: its symbols.
  net.begin_round();
  for (net::PartyId i = 0; i < n; ++i) {
    net::Payload symbols(codewords);
    for (std::size_t c = 0; c < codewords; ++c)
      symbols[c] = polys[c].eval(eval_point<64>(i));
    if (i != dealer) net.send(dealer, i, std::move(symbols));
  }
  net.end_round();
  std::vector<std::vector<Fld>> held(n);
  for (net::PartyId i = 0; i < n; ++i) {
    if (i == dealer) {
      held[i].resize(codewords);
      for (std::size_t c = 0; c < codewords; ++c)
        held[i][c] = polys[c].eval(eval_point<64>(i));
      continue;
    }
    const auto& msgs = net.delivered().p2p[i][dealer];
    if (!msgs.empty() && msgs.front().size() == codewords) {
      held[i] = msgs.front();
    } else {
      // Default-message convention: a missing or malformed symbol vector
      // becomes all-zeros (correctable below as dealer-attributed errors).
      held[i].assign(codewords, Fld::zero());
      net.blame(i, dealer, "dissemination.symbols.malformed");
    }
  }

  // Round 2: everyone echoes its symbols (corrupt parties may garble).
  net.begin_round();
  for (net::PartyId i = 0; i < n; ++i) {
    net::Payload echo = held[i];
    if (garble_corrupt_echoes && net.is_corrupt(i)) {
      for (auto& x : echo) x = Fld::random(net.adversary_rng());
    }
    for (net::PartyId j = 0; j < n; ++j)
      if (j != i) net.send(i, j, echo);
  }
  net.end_round();

  // Decode per receiver: BW with up to t errors per codeword.
  DisseminationResult result;
  result.outputs.resize(n);
  std::vector<Fld> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = eval_point<64>(i);
  for (net::PartyId r = 0; r < n; ++r) {
    std::vector<Fld> decoded;
    decoded.reserve(codewords * chunk);
    bool ok = true;
    for (std::size_t c = 0; c < codewords && ok; ++c) {
      std::vector<Fld> ys(n);
      for (net::PartyId i = 0; i < n; ++i) {
        if (i == r) {
          ys[i] = held[i][c];
          continue;
        }
        const auto& msgs = net.delivered().p2p[r][i];
        ys[i] = (!msgs.empty() && msgs.front().size() == codewords)
                    ? msgs.front()[c]
                    : Fld::zero();
      }
      auto poly = berlekamp_welch(xs, ys, degree, t);
      if (!poly) {
        // More than t corrupted symbols: out of the code's correction
        // radius, so receiver r's output stays undefined (nullopt).
        net.blame(r, dealer, "dissemination.decode.failed");
        ok = false;
        break;
      }
      for (std::size_t j = 0; j < chunk; ++j)
        decoded.push_back(j < poly->coeffs().size() ? poly->coeffs()[j]
                                                    : Fld::zero());
    }
    if (ok) {
      decoded.resize(vector_data.size());
      result.outputs[r] = std::move(decoded);
    }
  }
  result.costs = net.costs() - before;
  return result;
}

}  // namespace gfor14::vss
