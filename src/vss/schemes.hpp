// Scheme profiles: the three VSS instantiations the paper discusses.
//
// Round counts below are what the engine actually executes; see
// EXPERIMENTS.md (experiment E1) for how they relate to the figures the
// paper quotes (7 rounds for RB89, 9 for Rab94, 21 for GGOR13 — our
// statistical profile lands on the 9-round Rab94 figure of footnote 7).
#pragma once

#include <memory>

#include "vss/bivariate_engine.hpp"

namespace gfor14::vss {

enum class SchemeKind {
  kBGW,     ///< perfect, t < n/3, RS error-corrected reconstruction
  kRB,      ///< statistical, t < n/2, Rabin–Ben-Or / Rabin'94 style
  kGGOR13,  ///< statistical, t < n/2, 2 broadcast rounds in sharing
};

const char* scheme_name(SchemeKind kind);

/// Maximum tolerable t for the scheme on an n-party network.
std::size_t scheme_max_t(SchemeKind kind, std::size_t n);

/// Creates the scheme bound to `net` with its maximum threshold.
std::unique_ptr<VssScheme> make_vss(SchemeKind kind, net::Network& net);

/// As above with an explicit threshold t (must not exceed scheme_max_t) and
/// an optional forgery-success probability for the statistical schemes'
/// information-checking layer (tests of the 2^-Omega(kappa) failure path).
std::unique_ptr<VssScheme> make_vss(SchemeKind kind, net::Network& net,
                                    std::size_t t,
                                    double forgery_success_prob = 0.0);

}  // namespace gfor14::vss
