#include "vss/icp.hpp"

#include "common/expect.hpp"

namespace gfor14::vss {

IcpIssued icp_issue(Rng& dealer_rng, const std::vector<Fld>& values) {
  IcpIssued out;
  out.key.a = Fld::random_nonzero(dealer_rng);
  out.key.b.resize(values.size());
  out.auth.values = values;
  out.auth.tags.resize(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    out.key.b[k] = Fld::random(dealer_rng);
    out.auth.tags[k] = out.key.a * values[k] + out.key.b[k];
  }
  return out;
}

IcpReveal icp_reveal(const IcpAuth& auth, std::size_t k) {
  GFOR14_EXPECTS(k < auth.values.size());
  return {auth.values[k], auth.tags[k]};
}

IcpReveal icp_reveal_combined(const IcpAuth& auth,
                              const std::vector<Fld>& coeffs) {
  GFOR14_EXPECTS(coeffs.size() == auth.values.size());
  IcpReveal r{Fld::zero(), Fld::zero()};
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    r.value += coeffs[k] * auth.values[k];
    r.tag += coeffs[k] * auth.tags[k];
  }
  return r;
}

bool icp_verify(const IcpKey& key, std::size_t k, const IcpReveal& reveal) {
  GFOR14_EXPECTS(k < key.b.size());
  return reveal.tag == key.a * reveal.value + key.b[k];
}

bool icp_verify_combined(const IcpKey& key, const std::vector<Fld>& coeffs,
                         const IcpReveal& reveal) {
  GFOR14_EXPECTS(coeffs.size() == key.b.size());
  Fld b = Fld::zero();
  for (std::size_t k = 0; k < coeffs.size(); ++k) b += coeffs[k] * key.b[k];
  return reveal.tag == key.a * reveal.value + b;
}

}  // namespace gfor14::vss
