#include "vss/share_algebra.hpp"

#include <algorithm>

namespace gfor14::vss {

LinComb LinComb::of(SharingRef ref) {
  LinComb v;
  v.add(ref, Fld::one());
  return v;
}

LinComb LinComb::constant(Fld c) {
  LinComb v;
  v.constant_ = c;
  return v;
}

LinComb& LinComb::add(SharingRef ref, Fld coeff) {
  if (!coeff.is_zero()) terms_.emplace_back(ref, coeff);
  return *this;
}

LinComb& LinComb::add_constant(Fld c) {
  constant_ += c;
  return *this;
}

LinComb& LinComb::add(const LinComb& other, Fld coeff) {
  for (const auto& [ref, c] : other.terms_) add(ref, coeff * c);
  constant_ += coeff * other.constant_;
  return *this;
}

LinComb operator+(const LinComb& a, const LinComb& b) {
  LinComb r = a;
  r.add(b, Fld::one());
  return r;
}

LinComb operator-(const LinComb& a, const LinComb& b) {
  return a + b;  // char 2: subtraction == addition
}

LinComb operator*(Fld c, const LinComb& v) {
  LinComb r;
  r.add(v, c);
  return r;
}

void LinComb::normalize() {
  std::sort(terms_.begin(), terms_.end(), [](const auto& a, const auto& b) {
    return a.first.dealer != b.first.dealer
               ? a.first.dealer < b.first.dealer
               : a.first.index < b.first.index;
  });
  std::vector<std::pair<SharingRef, Fld>> merged;
  for (const auto& [ref, c] : terms_) {
    if (!merged.empty() && merged.back().first == ref) {
      merged.back().second += c;
    } else {
      merged.emplace_back(ref, c);
    }
  }
  std::erase_if(merged, [](const auto& term) { return term.second.is_zero(); });
  terms_ = std::move(merged);
}

}  // namespace gfor14::vss
