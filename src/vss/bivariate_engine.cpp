#include "vss/bivariate_engine.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "ff/batch.hpp"
#include "ff/ops.hpp"
#include "math/berlekamp_welch.hpp"
#include "math/lagrange_cache.hpp"

namespace gfor14::vss {

namespace {

Fld enc(std::size_t v) { return Fld::from_u64(static_cast<std::uint64_t>(v)); }

/// Decodes a size_t that was encoded with enc(); nullopt when out of range.
std::optional<std::size_t> dec(Fld f, std::size_t bound) {
  const std::uint64_t v = f.to_u64();
  if (f != Fld::from_u64(v) || v >= bound) return std::nullopt;
  return static_cast<std::size_t>(v);
}

}  // namespace

BivariateEngine::BivariateEngine(net::Network& net, EngineProfile profile)
    : net_(net),
      vss_alloc_count_(&net.registry().counter("vss.alloc.count")),
      vss_alloc_bytes_(&net.registry().counter("vss.alloc.bytes")),
      profile_(profile),
      behaviour_(net.n(), DealerBehaviour::kHonest),
      qualified_(net.n(), true),
      pools_(net.n()) {
  GFOR14_EXPECTS(profile_.t < net.n());
}

void BivariateEngine::set_dealer_behaviour(net::PartyId dealer,
                                           DealerBehaviour b) {
  GFOR14_EXPECTS(dealer < net_.n());
  behaviour_[dealer] = b;
}

std::size_t BivariateEngine::count(net::PartyId dealer) const {
  GFOR14_EXPECTS(dealer < net_.n());
  return pools_[dealer].count();
}

std::size_t BivariateEngine::share_rounds() const {
  // R1 slices, R2 cross-evaluations, 6 publish steps (complaints,
  // resolutions, accusations x2, slice openings x2) costing 1 round under
  // physical broadcast or 2 under echo, the vote broadcast (always
  // physical), the GGOR confirmation broadcast, and padding.
  if (profile_.publish == PublishMode::kPhysicalBroadcast)
    return 2 + 6 + 1 + profile_.pad_rounds;
  return 2 + 6 * 2 + 1 + 1 + profile_.pad_rounds;
}

std::size_t BivariateEngine::share_broadcast_rounds() const {
  // Echo profile: only the vote round and the dealer confirmation touch the
  // physical broadcast channel — the two broadcasts of GGOR13.
  return profile_.publish == PublishMode::kPhysicalBroadcast ? 7 : 2;
}

// ---------------------------------------------------------------------------
// Sharing phase
// ---------------------------------------------------------------------------

struct BivariateEngine::ShareCtx {
  const std::vector<std::vector<Fld>>* batches = nullptr;
  std::vector<net::PartyId> dealers;  // dealers with non-empty batches
  std::size_t total_m = 0;            // sum of batch sizes

  // Hoisted evaluation points alpha[i] = eval_point<64>(i) — the SoA
  // context shared by every round so no payload loop recomputes them.
  std::vector<Fld> alpha;

  // Ground truth polynomials per dealer (indexed like batches), plus their
  // coefficient-major expansion used to build slices with span kernels.
  std::vector<std::vector<SymmetricBivariate>> dealt;
  std::vector<BivariateBatch> dealt_soa;
  // recv[i][d]: the slice block party i currently holds for dealer d
  // (plane(c)[k] = x^c coefficient of the k-th slice); evolves as published
  // slices are adopted.
  std::vector<std::vector<SliceBlock>> recv;

  struct Complaint {
    std::size_t d, k, lo, hi;  // pair {lo, hi}, lo < hi
    auto operator<=>(const Complaint&) const = default;
  };
  std::set<Complaint> complaints;
  // Published resolution values keyed by complaint.
  std::map<Complaint, Fld> resolutions;
  // Public fault flags per dealer (missing/inconsistent publications).
  std::vector<bool> public_fault;
  // Everything the dealer has published so far: party -> slices per k.
  std::vector<std::map<net::PartyId, std::vector<Poly>>> published;
  // Current accuser set per dealer (level being processed).
  std::vector<std::set<net::PartyId>> accusers;
  // Private conflict flag per (party, dealer).
  std::vector<std::vector<bool>> conflicted;
};

void BivariateEngine::round_distribute_slices(ShareCtx& ctx) {
  const std::size_t n = net_.n();
  const std::size_t t = profile_.t;
  // Round handler runs per dealer (non-dealers are no-ops); dealer d only
  // touches rng_of(d), dealt[d] and its own recv[d][d] slot, so dealers are
  // independent lanes.
  net_.run_round([&](net::PartyId d, net::RoundLane& lane) {
    const auto& batch = (*ctx.batches)[d];
    if (batch.empty()) return;
    const DealerBehaviour b = behaviour_[d];
    if (b == DealerBehaviour::kSilent) return;
    SliceBlock block;
    for (net::PartyId i = 0; i < n; ++i) {
      charge_share_buffer(batch.size() * (t + 1));
      // A misbehaving dealer hands garbage slices to every second party
      // (other than itself) — enough to exercise complaint/resolution.
      const bool garbage = (b == DealerBehaviour::kInconsistentThenResolve ||
                            b == DealerBehaviour::kInconsistentRefuse) &&
                           i != d && i % 2 == 1;
      if (garbage) {
        // The per-(i, k) RNG draw order is part of the transcript contract,
        // so the garbage path stays the scalar per-slice loop.
        net::Payload payload;
        payload.reserve(batch.size() * (t + 1));
        for (std::size_t k = 0; k < batch.size(); ++k) {
          const Poly slice = Poly::random(net_.rng_of(d), t);
          for (std::size_t c = 0; c <= t; ++c)
            payload.push_back(c < slice.coeffs().size() ? slice.coeffs()[c]
                                                        : Fld::zero());
        }
        lane.send(i, std::move(payload));
        continue;
      }
      // Honest slices: one batched Horner sweep over the dealer's
      // coefficient planes instead of m per-Poly slice() calls.
      ctx.dealt_soa[d].slices_at(ctx.alpha[i], block);
      if (i == d) {
        // Local state; no self-message on the wire.
        ctx.recv[i][d] = block;
      } else {
        net::Payload payload(batch.size() * (t + 1));
        block.store_kmajor(payload);
        lane.send(i, std::move(payload));
      }
    }
  });
  // Parse: wrong-size or missing payloads leave the default zero slices
  // (the paper's default-message convention) and earn the dealer a blame
  // record. Party i only writes recv[i] and its own blame bucket.
  net_.for_each_party([&](net::PartyId i) {
    for (net::PartyId d : ctx.dealers) {
      if (i == d) continue;
      const auto& msgs = net_.delivered().p2p[i][d];
      if (msgs.empty()) {
        net_.blame(i, d, "vss.slices.missing");
        continue;
      }
      const auto& payload = msgs.front();
      const std::size_t m = (*ctx.batches)[d].size();
      if (payload.size() != m * (t + 1)) {
        net_.blame(i, d, "vss.slices.malformed");
        continue;
      }
      ctx.recv[i][d].load_kmajor(payload);
    }
  });
}

void BivariateEngine::round_cross_evaluations(ShareCtx& ctx) {
  const std::size_t n = net_.n();
  net_.run_round([&](net::PartyId i, net::RoundLane& lane) {
    for (net::PartyId j = 0; j < n; ++j) {
      if (i == j) continue;
      net::Payload payload(ctx.total_m);
      charge_share_buffer(ctx.total_m);
      // The receiver's evaluation point is hoisted per j (ctx.alpha) and
      // each dealer's block evaluates in one batched Horner sweep.
      std::size_t pos = 0;
      for (net::PartyId d : ctx.dealers) {
        const std::size_t m = (*ctx.batches)[d].size();
        ctx.recv[i][d].eval_all(ctx.alpha[j],
                                std::span<Fld>(payload.data() + pos, m));
        pos += m;
      }
      lane.send(j, std::move(payload));
    }
  });
  // Compare: j's claimed f_j(alpha_i) against my f_i(alpha_j). Each party
  // buffers its own complaints; the merge into the (deduplicating, ordered)
  // set is order-insensitive, so the parallel schedule cannot show through.
  std::vector<std::vector<ShareCtx::Complaint>> found(n);
  net_.for_each_party([&](net::PartyId i) {
    std::vector<Fld> mine(ctx.total_m);
    for (net::PartyId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto& msgs = net_.delivered().p2p[i][j];
      const net::Payload* payload =
          (!msgs.empty() && msgs.front().size() == ctx.total_m) ? &msgs.front()
                                                                : nullptr;
      std::size_t pos = 0;
      for (net::PartyId d : ctx.dealers) {
        const std::size_t m = (*ctx.batches)[d].size();
        ctx.recv[i][d].eval_all(ctx.alpha[j],
                                std::span<Fld>(mine.data() + pos, m));
        pos += m;
      }
      pos = 0;
      for (net::PartyId d : ctx.dealers) {
        for (std::size_t k = 0; k < (*ctx.batches)[d].size(); ++k, ++pos) {
          const Fld claimed = payload ? (*payload)[pos] : Fld::zero();
          if (claimed != mine[pos]) {
            found[i].push_back(
                {d, k, std::min<std::size_t>(i, j), std::max<std::size_t>(i, j)});
          }
        }
      }
    }
  });
  for (const auto& per_party : found)
    ctx.complaints.insert(per_party.begin(), per_party.end());
}

void BivariateEngine::publish_round(const std::vector<net::Payload>& per_party,
                                    std::vector<net::Payload>& received,
                                    bool force_physical) {
  const std::size_t n = net_.n();
  received = per_party;  // the logical result every party derives
  if (force_physical ||
      profile_.publish == PublishMode::kPhysicalBroadcast) {
    net_.begin_round();
    for (net::PartyId p = 0; p < n; ++p) net_.broadcast(p, per_party[p]);
    net_.end_round();
    return;
  }
  // Echo-based virtual broadcast: senders multicast over private channels,
  // then every party echoes everything it received; receivers take the
  // majority view per sender. With static corruption and honest senders the
  // majority equals the original payload, which is the value we return.
  net_.begin_round();
  for (net::PartyId p = 0; p < n; ++p)
    for (net::PartyId q = 0; q < n; ++q)
      if (p != q) net_.send(p, q, per_party[p]);
  net_.end_round();
  net_.begin_round();
  for (net::PartyId p = 0; p < n; ++p) {
    net::Payload echo;
    for (net::PartyId s = 0; s < n; ++s) {
      echo.push_back(enc(per_party[s].size()));
      echo.insert(echo.end(), per_party[s].begin(), per_party[s].end());
    }
    for (net::PartyId q = 0; q < n; ++q)
      if (p != q) net_.send(p, q, echo);
  }
  net_.end_round();
}

void BivariateEngine::run_padding_rounds() {
  for (std::size_t r = 0; r < profile_.pad_rounds; ++r) {
    net_.begin_round();
    net_.end_round();
  }
}

ShareResult BivariateEngine::share_all(
    const std::vector<std::vector<Fld>>& batches) {
  const std::size_t n = net_.n();
  const std::size_t t = profile_.t;
  GFOR14_EXPECTS(batches.size() == n);

  trace::Span span("vss.share_all", net_);
  std::size_t total_secrets = 0;
  for (const auto& b : batches) total_secrets += b.size();
  span.metric("secrets", static_cast<double>(total_secrets));

  ShareCtx ctx;
  ctx.batches = &batches;
  ctx.alpha.resize(n);
  for (net::PartyId i = 0; i < n; ++i) ctx.alpha[i] = eval_point<64>(i);
  ctx.dealt.resize(n);
  ctx.dealt_soa.resize(n);
  ctx.recv.assign(n, std::vector<SliceBlock>(n));
  ctx.public_fault.assign(n, false);
  ctx.published.resize(n);
  ctx.accusers.resize(n);
  ctx.conflicted.assign(n, std::vector<bool>(n, false));
  for (net::PartyId d = 0; d < n; ++d) {
    if (batches[d].empty()) continue;
    ctx.dealers.push_back(d);
    ctx.total_m += batches[d].size();
    for (net::PartyId i = 0; i < n; ++i)
      ctx.recv[i][d].assign(batches[d].size(), t + 1);
  }
  // Polynomial generation per dealer: dealer d draws only from its own
  // forked RNG stream and fills only dealt[d]. The draw order (per k, in
  // storage order) is unchanged; the SoA expansion happens after the draws.
  net_.for_each_party([&](net::PartyId d) {
    if (batches[d].empty()) return;
    ctx.dealt[d].reserve(batches[d].size());
    for (Fld s : batches[d])
      ctx.dealt[d].push_back(
          SymmetricBivariate::random_with_secret(net_.rng_of(d), t, s));
    ctx.dealt_soa[d].build(ctx.dealt[d], t);
  });

  // R1 + R2.
  round_distribute_slices(ctx);
  round_cross_evaluations(ctx);

  // Corrupt parties may raise spurious complaints (attack switch): they
  // complain about index 0 of every other dealer's batch.
  if (false_complaints_) {
    for (net::PartyId p = 0; p < n; ++p) {
      if (!net_.is_corrupt(p)) continue;
      for (net::PartyId d : ctx.dealers) {
        if (d == p) continue;
        const net::PartyId other = (p + 1) % n;
        if (other == p) continue;
        ctx.complaints.insert({d, 0, std::min<std::size_t>(p, other),
                               std::max<std::size_t>(p, other)});
      }
    }
  }

  // R3: publish complaints. Every party publishes the complaints it is part
  // of (ownership by the lower-numbered party avoids double publication).
  {
    std::vector<net::Payload> out(n);
    for (const auto& c : ctx.complaints) {
      auto& payload = out[c.lo];
      payload.push_back(enc(c.d));
      payload.push_back(enc(c.k));
      payload.push_back(enc(c.lo));
      payload.push_back(enc(c.hi));
    }
    std::vector<net::Payload> seen;
    publish_round(out, seen);
    // Parse the public complaint set (validating every field).
    ctx.complaints.clear();
    for (net::PartyId p = 0; p < n; ++p) {
      const auto& payload = seen[p];
      for (std::size_t pos = 0; pos + 4 <= payload.size(); pos += 4) {
        auto d = dec(payload[pos], n);
        auto lo = dec(payload[pos + 2], n);
        auto hi = dec(payload[pos + 3], n);
        if (!d || !lo || !hi || batches[*d].empty()) continue;
        auto k = dec(payload[pos + 1], batches[*d].size());
        if (!k || *lo >= *hi) continue;
        ctx.complaints.insert({*d, *k, *lo, *hi});
      }
    }
  }

  // R4: dealers publish resolutions F(alpha_lo, alpha_hi) per complaint.
  {
    std::vector<net::Payload> out(n);
    for (const auto& c : ctx.complaints) {
      const DealerBehaviour b = behaviour_[c.d];
      if (b == DealerBehaviour::kSilent ||
          b == DealerBehaviour::kInconsistentRefuse)
        continue;
      auto& payload = out[c.d];
      payload.push_back(enc(c.k));
      payload.push_back(enc(c.lo));
      payload.push_back(enc(c.hi));
      payload.push_back(
          ctx.dealt[c.d][c.k].eval(eval_point<64>(c.lo), eval_point<64>(c.hi)));
    }
    std::vector<net::Payload> seen;
    publish_round(out, seen);
    for (net::PartyId d = 0; d < n; ++d) {
      const auto& payload = seen[d];
      for (std::size_t pos = 0; pos + 4 <= payload.size(); pos += 4) {
        if (batches[d].empty()) break;
        auto k = dec(payload[pos], batches[d].size());
        auto lo = dec(payload[pos + 1], n);
        auto hi = dec(payload[pos + 2], n);
        if (!k || !lo || !hi || *lo >= *hi) continue;
        ctx.resolutions[{d, *k, *lo, *hi}] = payload[pos + 3];
      }
    }
    // Unresolved complaints are a public fault of the dealer.
    for (const auto& c : ctx.complaints)
      if (!ctx.resolutions.contains(c)) ctx.public_fault[c.d] = true;
    // Parties whose slices conflict with a resolution accuse (level 1).
    for (const auto& [c, value] : ctx.resolutions) {
      for (net::PartyId p : {c.lo, c.hi}) {
        const net::PartyId other = (p == c.lo) ? c.hi : c.lo;
        if (ctx.recv[p][c.d].eval_at(c.k, ctx.alpha[other]) != value)
          ctx.accusers[c.d].insert(p);
      }
    }
  }

  // Two rounds of (accusation publication, slice opening). Level 1 handles
  // resolution conflicts; level 2 handles conflicts with slices opened at
  // level 1 (see the class comment for why two levels suffice here).
  for (int level = 0; level < 2; ++level) {
    // Publish accusations.
    {
      std::vector<net::Payload> out(n);
      for (net::PartyId d : ctx.dealers)
        for (net::PartyId a : ctx.accusers[d]) out[a].push_back(enc(d));
      std::vector<net::Payload> seen;
      publish_round(out, seen);
      for (net::PartyId d : ctx.dealers) ctx.accusers[d].clear();
      for (net::PartyId a = 0; a < n; ++a)
        for (Fld f : seen[a])
          if (auto d = dec(f, n); d && !batches[*d].empty())
            ctx.accusers[*d].insert(a);
    }
    // Dealers open the accusers' full slices.
    {
      std::vector<net::Payload> out(n);
      for (net::PartyId d : ctx.dealers) {
        const DealerBehaviour b = behaviour_[d];
        if (b == DealerBehaviour::kSilent ||
            b == DealerBehaviour::kInconsistentRefuse)
          continue;
        for (net::PartyId a : ctx.accusers[d]) {
          auto& payload = out[d];
          payload.push_back(enc(a));
          for (std::size_t k = 0; k < batches[d].size(); ++k) {
            const Poly slice = ctx.dealt[d][k].slice(eval_point<64>(a));
            for (std::size_t c = 0; c <= t; ++c)
              payload.push_back(c < slice.coeffs().size() ? slice.coeffs()[c]
                                                          : Fld::zero());
          }
        }
      }
      std::vector<net::Payload> seen;
      publish_round(out, seen);
      std::vector<std::set<net::PartyId>> next_accusers(n);
      for (net::PartyId d : ctx.dealers) {
        const std::size_t m = batches[d].size();
        const std::size_t stride = 1 + m * (t + 1);
        const auto& payload = seen[d];
        std::set<net::PartyId> opened;
        for (std::size_t pos = 0; pos + stride <= payload.size();
             pos += stride) {
          auto a = dec(payload[pos], n);
          if (!a) continue;
          std::vector<Poly> slices(m);
          for (std::size_t k = 0; k < m; ++k) {
            std::vector<Fld> coeffs(
                payload.begin() + pos + 1 + k * (t + 1),
                payload.begin() + pos + 1 + (k + 1) * (t + 1));
            slices[k] = Poly{std::move(coeffs)};
          }
          // Public cross-checks: opened slices must agree with previously
          // opened slices and with published resolutions.
          for (const auto& [b_party, b_slices] : ctx.published[d]) {
            for (std::size_t k = 0; k < m; ++k) {
              if (slices[k].eval(eval_point<64>(b_party)) !=
                  b_slices[k].eval(eval_point<64>(*a)))
                ctx.public_fault[d] = true;
            }
          }
          for (const auto& [c, value] : ctx.resolutions) {
            if (c.d != d) continue;
            if (c.lo == *a && slices[c.k].eval(eval_point<64>(c.hi)) != value)
              ctx.public_fault[d] = true;
            if (c.hi == *a && slices[c.k].eval(eval_point<64>(c.lo)) != value)
              ctx.public_fault[d] = true;
          }
          // The accuser adopts the opened slice; everyone else privately
          // cross-checks it against their own slices.
          for (std::size_t k = 0; k < m; ++k)
            ctx.recv[*a][d].set_poly(k, slices[k]);
          for (net::PartyId p = 0; p < n; ++p) {
            if (p == *a || ctx.accusers[d].contains(p)) continue;
            for (std::size_t k = 0; k < m; ++k) {
              if (ctx.recv[p][d].eval_at(k, ctx.alpha[*a]) !=
                  slices[k].eval(ctx.alpha[p])) {
                if (level == 0) {
                  next_accusers[d].insert(p);
                } else {
                  ctx.conflicted[p][d] = true;
                }
              }
            }
          }
          ctx.published[d].emplace(*a, std::move(slices));
          opened.insert(*a);
        }
        // Ignoring an accuser is a public fault.
        for (net::PartyId a : ctx.accusers[d])
          if (!opened.contains(a)) ctx.public_fault[d] = true;
      }
      for (net::PartyId d : ctx.dealers) ctx.accusers[d] = next_accusers[d];
    }
  }

  // R9: votes. A party accepts a dealer unless there is a public fault or a
  // private conflict; corrupt parties additionally reject everyone when the
  // false-complaint attack is active.
  std::vector<std::size_t> accepts(n, 0);
  {
    std::vector<net::Payload> out(n);
    for (net::PartyId p = 0; p < n; ++p) {
      for (net::PartyId d : ctx.dealers) {
        bool accept = !ctx.public_fault[d] && !ctx.conflicted[p][d];
        if (false_complaints_ && net_.is_corrupt(p)) accept = false;
        out[p].push_back(enc(accept ? 1 : 0));
      }
    }
    std::vector<net::Payload> seen;
    publish_round(out, seen, /*force_physical=*/true);
    for (net::PartyId p = 0; p < n; ++p) {
      const auto& payload = seen[p];
      for (std::size_t idx = 0; idx < ctx.dealers.size(); ++idx) {
        if (idx < payload.size() && payload[idx] == Fld::from_u64(1))
          accepts[ctx.dealers[idx]] += 1;
      }
    }
  }

  // GGOR13 profile: a final dealer confirmation on the second of its two
  // physical-broadcast rounds (the "moderator finalization").
  if (profile_.publish == PublishMode::kEcho) {
    net_.begin_round();
    for (net::PartyId d : ctx.dealers) net_.broadcast(d, {Fld::one()});
    net_.end_round();
  }
  run_padding_rounds();

  // Finalize: append sharings, derive committed share polynomials. The
  // qualification flags live in vector<bool> (adjacent bits share a byte),
  // so they are set serially; the interpolation work — all of the cost —
  // then runs per dealer, each writing only its own pre-sized slots.
  ShareResult result;
  result.qualified.assign(n, true);
  std::vector<std::size_t> base(n, 0);
  for (net::PartyId d : ctx.dealers) {
    const bool ok = accepts[d] >= n - profile_.t;
    result.qualified[d] = ok;
    if (!ok) qualified_[d] = false;
    pools_[d].configure(t + 1);
    base[d] = pools_[d].append_zero(batches[d].size());  // zero columns
                                                         // until interpolated
  }
  // Finalize faults found on the worker lanes (one byte per dealer slot, so
  // concurrent writers never share a byte): 1 = too few content parties,
  // 2 = a content share off the interpolated polynomial. Either one means
  // the sharing is unusable; the dealer is disqualified below and every
  // affected share polynomial stays the default zero — degradation instead
  // of an abort, per the paper's convention.
  std::vector<std::uint8_t> finalize_fault(n, 0);
  net_.for_each_party([&](net::PartyId d) {
    const std::size_t m = batches[d].size();
    if (m == 0 || !result.qualified[d]) return;
    // The content honest parties (those without a private conflict) are
    // the same for every index k of this dealer's batch, so the Lagrange
    // basis polynomials L_p(y) of the first t + 1 of them are computed
    // once: g(y) = sum_p y_p * L_p(y).
    std::vector<net::PartyId> content;
    std::vector<Fld> xs;
    for (net::PartyId p = 0; p < n; ++p) {
      if (net_.is_corrupt(p) || ctx.conflicted[p][d]) continue;
      content.push_back(p);
      xs.push_back(eval_point<64>(p));
    }
    if (content.size() < t + 1) {
      finalize_fault[d] = 1;
      return;
    }
    std::vector<Fld> denoms(t + 1, Fld::one());
    for (std::size_t i = 0; i <= t; ++i)
      for (std::size_t jj = 0; jj <= t; ++jj)
        if (jj != i) denoms[i] *= xs[i] - xs[jj];
    ff::batch_inverse(std::span<Fld>(denoms));  // one inversion for the basis
    std::vector<Poly> basis;
    basis.reserve(t + 1);
    for (std::size_t i = 0; i <= t; ++i) {
      Poly b = Poly::constant(Fld::one());
      for (std::size_t jj = 0; jj <= t; ++jj) {
        if (jj == i) continue;
        b = b * Poly{{xs[jj], Fld::one()}};
      }
      basis.push_back(denoms[i] * b);
    }
    // Interpolate the committed share polynomials g(y) = F(0, y) for the
    // whole batch at once: a party's final share of index k is its slice
    // evaluated at y = 0 — exactly the x^0 coefficient plane of its slice
    // block — so g's coefficient planes are t + 1 span axpys, and the
    // consistency sweep (every other content honest share lies on g, the
    // qualification invariant) is one batched Horner per tail party.
    std::vector<std::vector<Fld>> gplanes(
        t + 1, std::vector<Fld>(m, Fld::zero()));
    for (std::size_t i = 0; i <= t; ++i) {
      const std::span<const Fld> yrow = ctx.recv[content[i]][d].plane(0);
      const auto& bc = basis[i].coeffs();
      for (std::size_t c = 0; c < bc.size(); ++c)
        ff::batch::axpy<64>(bc[c], yrow, std::span<Fld>(gplanes[c]));
    }
    std::vector<std::uint8_t> ok_k(m, 1);
    std::vector<Fld> pred(m);
    for (std::size_t i = t + 1; i < content.size(); ++i) {
      std::copy(gplanes[t].begin(), gplanes[t].end(), pred.begin());
      for (std::size_t c = t; c-- > 0;)
        ff::batch::horner_fold<64>(xs[i], std::span<Fld>(pred),
                                   std::span<const Fld>(gplanes[c]));
      const std::span<const Fld> yrow = ctx.recv[content[i]][d].plane(0);
      for (std::size_t k = 0; k < m; ++k)
        if (pred[k] != yrow[k]) ok_k[k] = 0;
    }
    // Consistent columns land in the pool; inconsistent ones stay the
    // default zero and mark the dealer faulty (same degradation as before).
    for (std::size_t c = 0; c <= t; ++c) {
      const std::span<Fld> dst = pools_[d].plane(c);
      for (std::size_t k = 0; k < m; ++k)
        if (ok_k[k]) dst[base[d] + k] = gplanes[c][k];
    }
    for (std::size_t k = 0; k < m; ++k)
      if (!ok_k[k]) {
        finalize_fault[d] = 2;
        break;
      }
  });
  for (net::PartyId d : ctx.dealers) {
    if (finalize_fault[d] == 0) continue;
    result.qualified[d] = false;
    qualified_[d] = false;
    net_.blame(net::kPublicBlame, d,
               finalize_fault[d] == 1 ? "vss.finalize.too_few_content_parties"
                                      : "vss.finalize.inconsistent_shares");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Reconstruction
// ---------------------------------------------------------------------------

Fld BivariateEngine::committed_share_of(const LinComb& v,
                                        net::PartyId party) const {
  Fld acc = v.constant_term();
  const Fld alpha = eval_point<64>(party);
  for (const auto& [ref, coeff] : v.terms()) {
    GFOR14_EXPECTS(ref.dealer < net_.n());
    GFOR14_EXPECTS(ref.index < pools_[ref.dealer].count());
    acc += coeff * pools_[ref.dealer].eval_one(ref.index, alpha);
  }
  return acc;
}

void BivariateEngine::committed_shares_into(std::span<const LinComb> values,
                                           net::PartyId party,
                                           std::span<Fld> out) const {
  GFOR14_EXPECTS(out.size() == values.size());
  const std::size_t n = net_.n();
  const Fld alpha = eval_point<64>(party);
  // Stats pass: find, per dealer, the index range the requests touch and the
  // total reference count. Dense-enough dealers get their whole range
  // evaluated in one batched Horner sweep (span kernels over the pool
  // planes); sparse dealers fall back to per-index Horner. Either way each
  // share value is the same Horner recurrence, so the sums below are
  // bit-identical to the scalar committed_share_of path.
  struct DealerStats {
    std::size_t refs = 0;
    std::size_t lo = ~std::size_t{0};
    std::size_t hi = 0;
  };
  std::vector<DealerStats> stats(n);
  for (const LinComb& v : values)
    for (const auto& [ref, coeff] : v.terms()) {
      GFOR14_EXPECTS(ref.dealer < n);
      GFOR14_EXPECTS(ref.index < pools_[ref.dealer].count());
      DealerStats& s = stats[ref.dealer];
      ++s.refs;
      s.lo = std::min(s.lo, ref.index);
      s.hi = std::max(s.hi, ref.index + 1);
    }
  std::vector<std::vector<Fld>> table(n);
  for (net::PartyId d = 0; d < n; ++d) {
    const DealerStats& s = stats[d];
    if (s.refs == 0) continue;
    const std::size_t width = s.hi - s.lo;
    if (s.refs >= 16 && s.refs * 4 >= width) {
      table[d].resize(width);
      pools_[d].eval_range(alpha, s.lo, std::span<Fld>(table[d]));
    }
  }
  for (std::size_t vi = 0; vi < values.size(); ++vi) {
    Fld acc = values[vi].constant_term();
    for (const auto& [ref, coeff] : values[vi].terms()) {
      const Fld share =
          table[ref.dealer].empty()
              ? pools_[ref.dealer].eval_one(ref.index, alpha)
              : table[ref.dealer][ref.index - stats[ref.dealer].lo];
      acc += coeff * share;
    }
    out[vi] = acc;
  }
}

Fld BivariateEngine::committed_value(const LinComb& v) const {
  Fld acc = v.constant_term();
  for (const auto& [ref, coeff] : v.terms()) {
    GFOR14_EXPECTS(ref.dealer < net_.n());
    GFOR14_EXPECTS(ref.index < pools_[ref.dealer].count());
    // The committed secret is g(0) — the x^0 pool plane, no Horner needed.
    acc += coeff * pools_[ref.dealer].plane(0)[ref.index];
  }
  return acc;
}

std::vector<Fld> BivariateEngine::decode_received(
    const std::vector<LinComb>& values,
    const std::vector<std::optional<std::vector<Fld>>>& per_sender) {
  const std::size_t n = net_.n();
  const std::size_t t = profile_.t;
  std::vector<Fld> out(values.size(), Fld::zero());

  if (profile_.recon == ReconMode::kAuthenticated) {
    // Filter each revealed share through the information-checking layer,
    // then interpolate t + 1 accepted shares. Lagrange coefficients come
    // from the process-wide cache keyed by the accepted point set (the
    // common case is a single set across all values and rounds).
    if (profile_.forgery_success_prob > 0.0) {
      // The forgery coin draws from the shared adversary stream in (value,
      // sender) order — that order is part of the determinism contract, so
      // this path stays serial and per-value regardless of kernels.
      for (std::size_t vi = 0; vi < values.size(); ++vi) {
        std::vector<net::PartyId> accepted;
        std::vector<Fld> accepted_vals;
        for (net::PartyId i = 0; i < n && accepted.size() < t + 1; ++i) {
          if (!per_sender[i]) continue;
          const Fld revealed = (*per_sender[i])[vi];
          const Fld expected = committed_share_of(values[vi], i);
          bool accept = revealed == expected;
          if (!accept) {
            const double coin =
                static_cast<double>(net_.adversary_rng().next_u64()) /
                static_cast<double>(~0ULL);
            accept = coin < profile_.forgery_success_prob;
          }
          if (accept) {
            accepted.push_back(i);
            accepted_vals.push_back(revealed);
          }
        }
        if (accepted.size() < t + 1) continue;  // default 0 (cannot happen
                                                // with an honest majority)
        std::vector<Fld> xs(accepted.size());
        for (std::size_t i = 0; i < accepted.size(); ++i)
          xs[i] = eval_point<64>(accepted[i]);
        const auto& lambda = LagrangeCache::instance().coefficients(
            std::span<const Fld>(xs), Fld::zero());
        out[vi] = ff::dot(std::span<const Fld>(lambda),
                          std::span<const Fld>(accepted_vals));
      }
      return out;
    }
    // Idealized IC (the default): acceptance is the pure predicate
    // revealed == committed share, so the sender walk batches — one
    // committed_shares_into per sender covers every value at once, and each
    // value keeps exactly the accept set the per-value walk would build
    // (senders visited in index order, capped at t + 1 accepts).
    std::vector<std::vector<net::PartyId>> acc_who(values.size());
    std::vector<std::vector<Fld>> acc_vals(values.size());
    std::size_t unfinished = values.size();
    std::vector<Fld> expected(values.size());
    for (net::PartyId i = 0; i < n && unfinished > 0; ++i) {
      if (!per_sender[i]) continue;
      committed_shares_into(std::span<const LinComb>(values.data(),
                                                     values.size()),
                            i, std::span<Fld>(expected));
      for (std::size_t vi = 0; vi < values.size(); ++vi) {
        if (acc_who[vi].size() >= t + 1) continue;
        if ((*per_sender[i])[vi] != expected[vi]) continue;
        acc_who[vi].push_back(i);
        acc_vals[vi].push_back(expected[vi]);
        if (acc_who[vi].size() == t + 1) --unfinished;
      }
    }
    // Accept sets repeat massively across values (usually one distinct set
    // per call), so resolve each distinct set's Lagrange row once — the
    // per-value work then collapses to a t+1-wide dot with no cache-key
    // allocation or lock traffic inside the parallel section.
    auto& lcache = LagrangeCache::instance();
    const bool use_lut = ff::span_prefers_lut();
    std::vector<std::vector<net::PartyId>> distinct_sets;
    std::vector<std::size_t> set_of(values.size(), ~std::size_t{0});
    for (std::size_t vi = 0; vi < values.size(); ++vi) {
      if (acc_who[vi].size() < t + 1) continue;  // default 0
      std::size_t s = 0;
      while (s < distinct_sets.size() && distinct_sets[s] != acc_who[vi]) ++s;
      if (s == distinct_sets.size()) distinct_sets.push_back(acc_who[vi]);
      set_of[vi] = s;
    }
    std::vector<const std::vector<Fld>*> set_lambda(distinct_sets.size());
    std::vector<const ff::batch::EncodePlan64*> set_plan(
        distinct_sets.size(), nullptr);
    for (std::size_t s = 0; s < distinct_sets.size(); ++s) {
      std::vector<Fld> xs(distinct_sets[s].size());
      for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = eval_point<64>(distinct_sets[s][i]);
      set_lambda[s] =
          &lcache.coefficients(std::span<const Fld>(xs), Fld::zero());
      if (use_lut)
        set_plan[s] =
            &lcache.encode_plan(std::span<const Fld>(xs), Fld::zero());
    }
    ThreadPool::instance().parallel_for(
        0, values.size(), net_.threads(), [&](std::size_t vi) {
          const std::size_t s = set_of[vi];
          if (s == ~std::size_t{0}) return;
          if (use_lut) {
            out[vi] = set_plan[s]->dot(std::span<const Fld>(acc_vals[vi]));
          } else {
            out[vi] = ff::dot(std::span<const Fld>(*set_lambda[s]),
                              std::span<const Fld>(acc_vals[vi]));
          }
        });
    return out;
  }

  // Error-correction mode (t < n/3): Berlekamp–Welch with a fast path that
  // first tries plain interpolation through the first t + 1 present shares.
  std::vector<Fld> xs;
  std::vector<net::PartyId> present;
  for (net::PartyId i = 0; i < n; ++i) {
    if (!per_sender[i]) continue;
    present.push_back(i);
    xs.push_back(eval_point<64>(i));
  }
  const std::size_t navail = present.size();
  if (navail < t + 1) {
    // Fewer shares than the degree bound: no interpolation is possible, so
    // every value degrades to the canonical default (zero) instead of
    // aborting the honest viewer; the absent senders earn blame records.
    for (net::PartyId i = 0; i < n; ++i)
      if (!per_sender[i])
        net_.blame(net::kPublicBlame, i, "vss.recon.missing_share");
    return out;
  }
  const std::size_t max_errors = navail > t ? (navail - t - 1) / 2 : 0;
  // Precompute, once per call, the Lagrange evaluation rows of the head
  // interpolation at zero and at every tail point: head(x_i) and head(0)
  // are then inner products with the received shares (no per-value
  // interpolation or field inversions).
  const std::span<const Fld> head_x(xs.data(), t + 1);
  auto& lcache = LagrangeCache::instance();
  const auto& lambda0 = lcache.coefficients(head_x, Fld::zero());
  std::vector<const std::vector<Fld>*> tail_rows;
  tail_rows.reserve(navail - (t + 1));
  for (std::size_t i = t + 1; i < navail; ++i)
    tail_rows.push_back(&lcache.coefficients(head_x, xs[i]));
  // Under software multiply kernels the encode rows amortize into
  // generator LUTs (16 KiB per coefficient, shared across every value in
  // every round at this point set) — built here, outside the parallel
  // section, so lanes never duplicate table construction.
  const bool use_lut = ff::span_prefers_lut();
  const ff::batch::EncodePlan64* plan0 =
      use_lut ? &lcache.encode_plan(head_x, Fld::zero()) : nullptr;
  std::vector<const ff::batch::EncodePlan64*> tail_plans;
  if (use_lut)
    for (std::size_t i = t + 1; i < navail; ++i)
      tail_plans.push_back(&lcache.encode_plan(head_x, xs[i]));
  // Chunked span decode: each sender's revealed vector is contiguous over
  // the value index, so the head interpolation at zero and at every tail
  // point are t + 1 span-axpys per chunk instead of per-value dots — the
  // same field operations in the same Horner/accumulation order, evaluated
  // column-wise (exact arithmetic: bit-identical results, see
  // tests/ff_batch_test.cpp). Chunks split across lanes; without that the
  // serial decode would Amdahl-cap reconstruction speedups.
  constexpr std::size_t kChunk = 2048;
  const std::size_t nchunks = (values.size() + kChunk - 1) / kChunk;
  ThreadPool::instance().parallel_for(
      0, nchunks, net_.threads(), [&](std::size_t ci) {
        const std::size_t lo = ci * kChunk;
        const std::size_t hi = std::min(lo + kChunk, values.size());
        const std::size_t len = hi - lo;
        const std::span<Fld> dst(out.data() + lo, len);
        const auto row = [&](std::size_t i) {
          return std::span<const Fld>(per_sender[present[i]]->data() + lo,
                                      len);
        };
        // Fast path for the whole chunk: interpolate the head senders at 0.
        for (std::size_t i = 0; i <= t; ++i) {
          if (use_lut)
            plan0->lut(i).axpy(row(i), dst);
          else
            ff::batch::axpy<64>(lambda0[i], row(i), dst);
        }
        // Consistency sweep: every tail share must lie on the head
        // interpolation; failures fall back to Berlekamp-Welch per value.
        std::vector<std::uint8_t> ok(len, 1);
        std::vector<Fld> pred(len);
        for (std::size_t j = 0; t + 1 + j < navail; ++j) {
          std::fill(pred.begin(), pred.end(), Fld::zero());
          for (std::size_t i = 0; i <= t; ++i) {
            if (use_lut)
              tail_plans[j]->lut(i).axpy(row(i), std::span<Fld>(pred));
            else
              ff::batch::axpy<64>((*tail_rows[j])[i], row(i),
                                  std::span<Fld>(pred));
          }
          const std::span<const Fld> tail = row(t + 1 + j);
          for (std::size_t k = 0; k < len; ++k)
            if (pred[k] != tail[k]) ok[k] = 0;
        }
        for (std::size_t k = 0; k < len; ++k) {
          if (ok[k]) continue;
          std::vector<Fld> ys(navail);
          for (std::size_t i = 0; i < navail; ++i)
            ys[i] = (*per_sender[present[i]])[lo + k];
          auto decoded = berlekamp_welch(xs, ys, t, max_errors);
          // Overwrites the fast-path accumulation; no decode keeps the
          // canonical default (zero), matching the per-value code.
          dst[k] = decoded ? decoded->eval(Fld::zero()) : Fld::zero();
        }
      });
  return out;
}

std::vector<Fld> BivariateEngine::reconstruct_public(
    const std::vector<LinComb>& values) {
  const std::size_t n = net_.n();
  trace::Span span("vss.reconstruct_public", net_);
  span.metric("values", static_cast<double>(values.size()));
  // The n× committed_share_of evaluations per sender are the hot path of
  // reconstruction; each sender computes and queues independently.
  net_.run_round([&](net::PartyId i, net::RoundLane& lane) {
    net::Payload payload(values.size());
    charge_share_buffer(values.size());
    committed_shares_into(std::span<const LinComb>(values.data(),
                                                   values.size()),
                          i, std::span<Fld>(payload.data(), payload.size()));
    for (net::PartyId j = 0; j < n; ++j)
      if (i != j) lane.send(j, payload);
  });
  // Decode from the viewpoint of the lowest-indexed honest party (all honest
  // parties derive the same values — equivocated or corrupted shares are
  // rejected receiver-side).
  net::PartyId viewer = 0;
  while (viewer < n && net_.is_corrupt(viewer)) ++viewer;
  GFOR14_EXPECTS(viewer < n);
  std::vector<std::optional<std::vector<Fld>>> per_sender(n);
  for (net::PartyId i = 0; i < n; ++i) {
    if (i == viewer) {
      std::vector<Fld> own(values.size());
      committed_shares_into(std::span<const LinComb>(values.data(),
                                                     values.size()),
                            viewer, std::span<Fld>(own));
      per_sender[i] = std::move(own);
      continue;
    }
    const auto& msgs = net_.delivered().p2p[viewer][i];
    if (!msgs.empty() && msgs.front().size() == values.size())
      per_sender[i] = msgs.front();
  }
  return decode_received(values, per_sender);
}

std::vector<Fld> BivariateEngine::reconstruct_private(
    net::PartyId receiver, const std::vector<LinComb>& values) {
  return reconstruct_private_multi({{receiver, values}})[0];
}

std::vector<std::vector<Fld>> BivariateEngine::reconstruct_private_multi(
    const std::vector<PrivateRequest>& requests) {
  const std::size_t n = net_.n();
  trace::Span span("vss.reconstruct_private", net_);
  span.metric("requests", static_cast<double>(requests.size()));
  for (const auto& req : requests) GFOR14_EXPECTS(req.receiver < n);
  // Sender-major iteration (each sender walks the requests in order) keeps
  // every (sender, receiver) channel's message sequence in request order —
  // exactly what the slot-indexed inbox reads below rely on — while letting
  // each sender evaluate its committed shares on its own lane.
  net_.run_round([&](net::PartyId i, net::RoundLane& lane) {
    for (const auto& req : requests) {
      if (i == req.receiver) continue;
      net::Payload payload(req.values.size());
      charge_share_buffer(req.values.size());
      committed_shares_into(
          std::span<const LinComb>(req.values.data(), req.values.size()), i,
          std::span<Fld>(payload.data(), payload.size()));
      lane.send(req.receiver, std::move(payload));
    }
  });
  // Per receiver, messages arrive in request order (FIFO per channel), so
  // the r-th request toward a receiver reads that receiver's r-th inbox
  // entry from each sender.
  std::vector<std::size_t> seen_for_receiver(n, 0);
  std::vector<std::vector<Fld>> out;
  out.reserve(requests.size());
  for (const auto& req : requests) {
    const std::size_t slot = seen_for_receiver[req.receiver]++;
    std::vector<std::optional<std::vector<Fld>>> per_sender(n);
    for (net::PartyId i = 0; i < n; ++i) {
      if (i == req.receiver) {
        std::vector<Fld> own(req.values.size());
        committed_shares_into(
            std::span<const LinComb>(req.values.data(), req.values.size()),
            req.receiver, std::span<Fld>(own));
        per_sender[i] = std::move(own);
        continue;
      }
      const auto& msgs = net_.delivered().p2p[req.receiver][i];
      if (slot < msgs.size() && msgs[slot].size() == req.values.size())
        per_sender[i] = msgs[slot];
    }
    out.push_back(decode_received(req.values, per_sender));
  }
  return out;
}

}  // namespace gfor14::vss
