#include "vss/bivariate_engine.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "ff/ops.hpp"
#include "math/berlekamp_welch.hpp"
#include "math/lagrange_cache.hpp"

namespace gfor14::vss {

namespace {

Fld enc(std::size_t v) { return Fld::from_u64(static_cast<std::uint64_t>(v)); }

/// Decodes a size_t that was encoded with enc(); nullopt when out of range.
std::optional<std::size_t> dec(Fld f, std::size_t bound) {
  const std::uint64_t v = f.to_u64();
  if (f != Fld::from_u64(v) || v >= bound) return std::nullopt;
  return static_cast<std::size_t>(v);
}

}  // namespace

BivariateEngine::BivariateEngine(net::Network& net, EngineProfile profile)
    : net_(net),
      vss_alloc_count_(&net.registry().counter("vss.alloc.count")),
      vss_alloc_bytes_(&net.registry().counter("vss.alloc.bytes")),
      profile_(profile),
      behaviour_(net.n(), DealerBehaviour::kHonest),
      qualified_(net.n(), true),
      sharings_(net.n()) {
  GFOR14_EXPECTS(profile_.t < net.n());
}

void BivariateEngine::set_dealer_behaviour(net::PartyId dealer,
                                           DealerBehaviour b) {
  GFOR14_EXPECTS(dealer < net_.n());
  behaviour_[dealer] = b;
}

std::size_t BivariateEngine::count(net::PartyId dealer) const {
  GFOR14_EXPECTS(dealer < net_.n());
  return sharings_[dealer].size();
}

std::size_t BivariateEngine::share_rounds() const {
  // R1 slices, R2 cross-evaluations, 6 publish steps (complaints,
  // resolutions, accusations x2, slice openings x2) costing 1 round under
  // physical broadcast or 2 under echo, the vote broadcast (always
  // physical), the GGOR confirmation broadcast, and padding.
  if (profile_.publish == PublishMode::kPhysicalBroadcast)
    return 2 + 6 + 1 + profile_.pad_rounds;
  return 2 + 6 * 2 + 1 + 1 + profile_.pad_rounds;
}

std::size_t BivariateEngine::share_broadcast_rounds() const {
  // Echo profile: only the vote round and the dealer confirmation touch the
  // physical broadcast channel — the two broadcasts of GGOR13.
  return profile_.publish == PublishMode::kPhysicalBroadcast ? 7 : 2;
}

// ---------------------------------------------------------------------------
// Sharing phase
// ---------------------------------------------------------------------------

struct BivariateEngine::ShareCtx {
  const std::vector<std::vector<Fld>>* batches = nullptr;
  std::vector<net::PartyId> dealers;  // dealers with non-empty batches
  std::size_t total_m = 0;            // sum of batch sizes

  // Ground truth polynomials per dealer (indexed like batches).
  std::vector<std::vector<SymmetricBivariate>> dealt;
  // recv[i][d][k]: the slice party i currently holds for sharing (d, k);
  // evolves as published slices are adopted.
  std::vector<std::vector<std::vector<Poly>>> recv;

  struct Complaint {
    std::size_t d, k, lo, hi;  // pair {lo, hi}, lo < hi
    auto operator<=>(const Complaint&) const = default;
  };
  std::set<Complaint> complaints;
  // Published resolution values keyed by complaint.
  std::map<Complaint, Fld> resolutions;
  // Public fault flags per dealer (missing/inconsistent publications).
  std::vector<bool> public_fault;
  // Everything the dealer has published so far: party -> slices per k.
  std::vector<std::map<net::PartyId, std::vector<Poly>>> published;
  // Current accuser set per dealer (level being processed).
  std::vector<std::set<net::PartyId>> accusers;
  // Private conflict flag per (party, dealer).
  std::vector<std::vector<bool>> conflicted;
};

void BivariateEngine::round_distribute_slices(ShareCtx& ctx) {
  const std::size_t n = net_.n();
  const std::size_t t = profile_.t;
  // Round handler runs per dealer (non-dealers are no-ops); dealer d only
  // touches rng_of(d), dealt[d] and its own recv[d][d] slot, so dealers are
  // independent lanes.
  net_.run_round([&](net::PartyId d, net::RoundLane& lane) {
    const auto& batch = (*ctx.batches)[d];
    if (batch.empty()) return;
    const DealerBehaviour b = behaviour_[d];
    if (b == DealerBehaviour::kSilent) return;
    for (net::PartyId i = 0; i < n; ++i) {
      net::Payload payload;
      payload.reserve(batch.size() * (t + 1));
      charge_share_buffer(batch.size() * (t + 1));
      // A misbehaving dealer hands garbage slices to every second party
      // (other than itself) — enough to exercise complaint/resolution.
      const bool garbage = (b == DealerBehaviour::kInconsistentThenResolve ||
                            b == DealerBehaviour::kInconsistentRefuse) &&
                           i != d && i % 2 == 1;
      for (std::size_t k = 0; k < batch.size(); ++k) {
        const Poly slice = garbage
                               ? Poly::random(net_.rng_of(d), t)
                               : ctx.dealt[d][k].slice(eval_point<64>(i));
        for (std::size_t c = 0; c <= t; ++c)
          payload.push_back(c < slice.coeffs().size() ? slice.coeffs()[c]
                                                      : Fld::zero());
      }
      if (i == d) {
        // Local state; no self-message on the wire.
        for (std::size_t k = 0; k < batch.size(); ++k) {
          std::vector<Fld> coeffs(payload.begin() + k * (t + 1),
                                  payload.begin() + (k + 1) * (t + 1));
          ctx.recv[i][d][k] = Poly{std::move(coeffs)};
        }
      } else {
        lane.send(i, std::move(payload));
      }
    }
  });
  // Parse: wrong-size or missing payloads leave the default zero slices
  // (the paper's default-message convention) and earn the dealer a blame
  // record. Party i only writes recv[i] and its own blame bucket.
  net_.for_each_party([&](net::PartyId i) {
    for (net::PartyId d : ctx.dealers) {
      if (i == d) continue;
      const auto& msgs = net_.delivered().p2p[i][d];
      if (msgs.empty()) {
        net_.blame(i, d, "vss.slices.missing");
        continue;
      }
      const auto& payload = msgs.front();
      const std::size_t m = (*ctx.batches)[d].size();
      if (payload.size() != m * (t + 1)) {
        net_.blame(i, d, "vss.slices.malformed");
        continue;
      }
      for (std::size_t k = 0; k < m; ++k) {
        std::vector<Fld> coeffs(payload.begin() + k * (t + 1),
                                payload.begin() + (k + 1) * (t + 1));
        ctx.recv[i][d][k] = Poly{std::move(coeffs)};
      }
    }
  });
}

void BivariateEngine::round_cross_evaluations(ShareCtx& ctx) {
  const std::size_t n = net_.n();
  net_.run_round([&](net::PartyId i, net::RoundLane& lane) {
    for (net::PartyId j = 0; j < n; ++j) {
      if (i == j) continue;
      net::Payload payload;
      payload.reserve(ctx.total_m);
      charge_share_buffer(ctx.total_m);
      for (net::PartyId d : ctx.dealers)
        for (const auto& slice : ctx.recv[i][d])
          payload.push_back(slice.eval(eval_point<64>(j)));
      lane.send(j, std::move(payload));
    }
  });
  // Compare: j's claimed f_j(alpha_i) against my f_i(alpha_j). Each party
  // buffers its own complaints; the merge into the (deduplicating, ordered)
  // set is order-insensitive, so the parallel schedule cannot show through.
  std::vector<std::vector<ShareCtx::Complaint>> found(n);
  net_.for_each_party([&](net::PartyId i) {
    for (net::PartyId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto& msgs = net_.delivered().p2p[i][j];
      const net::Payload* payload =
          (!msgs.empty() && msgs.front().size() == ctx.total_m) ? &msgs.front()
                                                                : nullptr;
      std::size_t pos = 0;
      for (net::PartyId d : ctx.dealers) {
        for (std::size_t k = 0; k < (*ctx.batches)[d].size(); ++k, ++pos) {
          const Fld claimed = payload ? (*payload)[pos] : Fld::zero();
          const Fld mine = ctx.recv[i][d][k].eval(eval_point<64>(j));
          if (claimed != mine) {
            found[i].push_back(
                {d, k, std::min<std::size_t>(i, j), std::max<std::size_t>(i, j)});
          }
        }
      }
    }
  });
  for (const auto& per_party : found)
    ctx.complaints.insert(per_party.begin(), per_party.end());
}

void BivariateEngine::publish_round(const std::vector<net::Payload>& per_party,
                                    std::vector<net::Payload>& received,
                                    bool force_physical) {
  const std::size_t n = net_.n();
  received = per_party;  // the logical result every party derives
  if (force_physical ||
      profile_.publish == PublishMode::kPhysicalBroadcast) {
    net_.begin_round();
    for (net::PartyId p = 0; p < n; ++p) net_.broadcast(p, per_party[p]);
    net_.end_round();
    return;
  }
  // Echo-based virtual broadcast: senders multicast over private channels,
  // then every party echoes everything it received; receivers take the
  // majority view per sender. With static corruption and honest senders the
  // majority equals the original payload, which is the value we return.
  net_.begin_round();
  for (net::PartyId p = 0; p < n; ++p)
    for (net::PartyId q = 0; q < n; ++q)
      if (p != q) net_.send(p, q, per_party[p]);
  net_.end_round();
  net_.begin_round();
  for (net::PartyId p = 0; p < n; ++p) {
    net::Payload echo;
    for (net::PartyId s = 0; s < n; ++s) {
      echo.push_back(enc(per_party[s].size()));
      echo.insert(echo.end(), per_party[s].begin(), per_party[s].end());
    }
    for (net::PartyId q = 0; q < n; ++q)
      if (p != q) net_.send(p, q, echo);
  }
  net_.end_round();
}

void BivariateEngine::run_padding_rounds() {
  for (std::size_t r = 0; r < profile_.pad_rounds; ++r) {
    net_.begin_round();
    net_.end_round();
  }
}

ShareResult BivariateEngine::share_all(
    const std::vector<std::vector<Fld>>& batches) {
  const std::size_t n = net_.n();
  const std::size_t t = profile_.t;
  GFOR14_EXPECTS(batches.size() == n);

  trace::Span span("vss.share_all", net_);
  std::size_t total_secrets = 0;
  for (const auto& b : batches) total_secrets += b.size();
  span.metric("secrets", static_cast<double>(total_secrets));

  ShareCtx ctx;
  ctx.batches = &batches;
  ctx.dealt.resize(n);
  ctx.recv.assign(n, std::vector<std::vector<Poly>>(n));
  ctx.public_fault.assign(n, false);
  ctx.published.resize(n);
  ctx.accusers.resize(n);
  ctx.conflicted.assign(n, std::vector<bool>(n, false));
  for (net::PartyId d = 0; d < n; ++d) {
    if (batches[d].empty()) continue;
    ctx.dealers.push_back(d);
    ctx.total_m += batches[d].size();
    for (net::PartyId i = 0; i < n; ++i)
      ctx.recv[i][d].assign(batches[d].size(), Poly{});
  }
  // Polynomial generation per dealer: dealer d draws only from its own
  // forked RNG stream and fills only dealt[d].
  net_.for_each_party([&](net::PartyId d) {
    if (batches[d].empty()) return;
    ctx.dealt[d].reserve(batches[d].size());
    for (Fld s : batches[d])
      ctx.dealt[d].push_back(
          SymmetricBivariate::random_with_secret(net_.rng_of(d), t, s));
  });

  // R1 + R2.
  round_distribute_slices(ctx);
  round_cross_evaluations(ctx);

  // Corrupt parties may raise spurious complaints (attack switch): they
  // complain about index 0 of every other dealer's batch.
  if (false_complaints_) {
    for (net::PartyId p = 0; p < n; ++p) {
      if (!net_.is_corrupt(p)) continue;
      for (net::PartyId d : ctx.dealers) {
        if (d == p) continue;
        const net::PartyId other = (p + 1) % n;
        if (other == p) continue;
        ctx.complaints.insert({d, 0, std::min<std::size_t>(p, other),
                               std::max<std::size_t>(p, other)});
      }
    }
  }

  // R3: publish complaints. Every party publishes the complaints it is part
  // of (ownership by the lower-numbered party avoids double publication).
  {
    std::vector<net::Payload> out(n);
    for (const auto& c : ctx.complaints) {
      auto& payload = out[c.lo];
      payload.push_back(enc(c.d));
      payload.push_back(enc(c.k));
      payload.push_back(enc(c.lo));
      payload.push_back(enc(c.hi));
    }
    std::vector<net::Payload> seen;
    publish_round(out, seen);
    // Parse the public complaint set (validating every field).
    ctx.complaints.clear();
    for (net::PartyId p = 0; p < n; ++p) {
      const auto& payload = seen[p];
      for (std::size_t pos = 0; pos + 4 <= payload.size(); pos += 4) {
        auto d = dec(payload[pos], n);
        auto lo = dec(payload[pos + 2], n);
        auto hi = dec(payload[pos + 3], n);
        if (!d || !lo || !hi || batches[*d].empty()) continue;
        auto k = dec(payload[pos + 1], batches[*d].size());
        if (!k || *lo >= *hi) continue;
        ctx.complaints.insert({*d, *k, *lo, *hi});
      }
    }
  }

  // R4: dealers publish resolutions F(alpha_lo, alpha_hi) per complaint.
  {
    std::vector<net::Payload> out(n);
    for (const auto& c : ctx.complaints) {
      const DealerBehaviour b = behaviour_[c.d];
      if (b == DealerBehaviour::kSilent ||
          b == DealerBehaviour::kInconsistentRefuse)
        continue;
      auto& payload = out[c.d];
      payload.push_back(enc(c.k));
      payload.push_back(enc(c.lo));
      payload.push_back(enc(c.hi));
      payload.push_back(
          ctx.dealt[c.d][c.k].eval(eval_point<64>(c.lo), eval_point<64>(c.hi)));
    }
    std::vector<net::Payload> seen;
    publish_round(out, seen);
    for (net::PartyId d = 0; d < n; ++d) {
      const auto& payload = seen[d];
      for (std::size_t pos = 0; pos + 4 <= payload.size(); pos += 4) {
        if (batches[d].empty()) break;
        auto k = dec(payload[pos], batches[d].size());
        auto lo = dec(payload[pos + 1], n);
        auto hi = dec(payload[pos + 2], n);
        if (!k || !lo || !hi || *lo >= *hi) continue;
        ctx.resolutions[{d, *k, *lo, *hi}] = payload[pos + 3];
      }
    }
    // Unresolved complaints are a public fault of the dealer.
    for (const auto& c : ctx.complaints)
      if (!ctx.resolutions.contains(c)) ctx.public_fault[c.d] = true;
    // Parties whose slices conflict with a resolution accuse (level 1).
    for (const auto& [c, value] : ctx.resolutions) {
      for (net::PartyId p : {c.lo, c.hi}) {
        const net::PartyId other = (p == c.lo) ? c.hi : c.lo;
        if (ctx.recv[p][c.d][c.k].eval(eval_point<64>(other)) != value)
          ctx.accusers[c.d].insert(p);
      }
    }
  }

  // Two rounds of (accusation publication, slice opening). Level 1 handles
  // resolution conflicts; level 2 handles conflicts with slices opened at
  // level 1 (see the class comment for why two levels suffice here).
  for (int level = 0; level < 2; ++level) {
    // Publish accusations.
    {
      std::vector<net::Payload> out(n);
      for (net::PartyId d : ctx.dealers)
        for (net::PartyId a : ctx.accusers[d]) out[a].push_back(enc(d));
      std::vector<net::Payload> seen;
      publish_round(out, seen);
      for (net::PartyId d : ctx.dealers) ctx.accusers[d].clear();
      for (net::PartyId a = 0; a < n; ++a)
        for (Fld f : seen[a])
          if (auto d = dec(f, n); d && !batches[*d].empty())
            ctx.accusers[*d].insert(a);
    }
    // Dealers open the accusers' full slices.
    {
      std::vector<net::Payload> out(n);
      for (net::PartyId d : ctx.dealers) {
        const DealerBehaviour b = behaviour_[d];
        if (b == DealerBehaviour::kSilent ||
            b == DealerBehaviour::kInconsistentRefuse)
          continue;
        for (net::PartyId a : ctx.accusers[d]) {
          auto& payload = out[d];
          payload.push_back(enc(a));
          for (std::size_t k = 0; k < batches[d].size(); ++k) {
            const Poly slice = ctx.dealt[d][k].slice(eval_point<64>(a));
            for (std::size_t c = 0; c <= t; ++c)
              payload.push_back(c < slice.coeffs().size() ? slice.coeffs()[c]
                                                          : Fld::zero());
          }
        }
      }
      std::vector<net::Payload> seen;
      publish_round(out, seen);
      std::vector<std::set<net::PartyId>> next_accusers(n);
      for (net::PartyId d : ctx.dealers) {
        const std::size_t m = batches[d].size();
        const std::size_t stride = 1 + m * (t + 1);
        const auto& payload = seen[d];
        std::set<net::PartyId> opened;
        for (std::size_t pos = 0; pos + stride <= payload.size();
             pos += stride) {
          auto a = dec(payload[pos], n);
          if (!a) continue;
          std::vector<Poly> slices(m);
          for (std::size_t k = 0; k < m; ++k) {
            std::vector<Fld> coeffs(
                payload.begin() + pos + 1 + k * (t + 1),
                payload.begin() + pos + 1 + (k + 1) * (t + 1));
            slices[k] = Poly{std::move(coeffs)};
          }
          // Public cross-checks: opened slices must agree with previously
          // opened slices and with published resolutions.
          for (const auto& [b_party, b_slices] : ctx.published[d]) {
            for (std::size_t k = 0; k < m; ++k) {
              if (slices[k].eval(eval_point<64>(b_party)) !=
                  b_slices[k].eval(eval_point<64>(*a)))
                ctx.public_fault[d] = true;
            }
          }
          for (const auto& [c, value] : ctx.resolutions) {
            if (c.d != d) continue;
            if (c.lo == *a && slices[c.k].eval(eval_point<64>(c.hi)) != value)
              ctx.public_fault[d] = true;
            if (c.hi == *a && slices[c.k].eval(eval_point<64>(c.lo)) != value)
              ctx.public_fault[d] = true;
          }
          // The accuser adopts the opened slice; everyone else privately
          // cross-checks it against their own slices.
          ctx.recv[*a][d] = slices;
          for (net::PartyId p = 0; p < n; ++p) {
            if (p == *a || ctx.accusers[d].contains(p)) continue;
            for (std::size_t k = 0; k < m; ++k) {
              if (ctx.recv[p][d][k].eval(eval_point<64>(*a)) !=
                  slices[k].eval(eval_point<64>(p))) {
                if (level == 0) {
                  next_accusers[d].insert(p);
                } else {
                  ctx.conflicted[p][d] = true;
                }
              }
            }
          }
          ctx.published[d].emplace(*a, std::move(slices));
          opened.insert(*a);
        }
        // Ignoring an accuser is a public fault.
        for (net::PartyId a : ctx.accusers[d])
          if (!opened.contains(a)) ctx.public_fault[d] = true;
      }
      for (net::PartyId d : ctx.dealers) ctx.accusers[d] = next_accusers[d];
    }
  }

  // R9: votes. A party accepts a dealer unless there is a public fault or a
  // private conflict; corrupt parties additionally reject everyone when the
  // false-complaint attack is active.
  std::vector<std::size_t> accepts(n, 0);
  {
    std::vector<net::Payload> out(n);
    for (net::PartyId p = 0; p < n; ++p) {
      for (net::PartyId d : ctx.dealers) {
        bool accept = !ctx.public_fault[d] && !ctx.conflicted[p][d];
        if (false_complaints_ && net_.is_corrupt(p)) accept = false;
        out[p].push_back(enc(accept ? 1 : 0));
      }
    }
    std::vector<net::Payload> seen;
    publish_round(out, seen, /*force_physical=*/true);
    for (net::PartyId p = 0; p < n; ++p) {
      const auto& payload = seen[p];
      for (std::size_t idx = 0; idx < ctx.dealers.size(); ++idx) {
        if (idx < payload.size() && payload[idx] == Fld::from_u64(1))
          accepts[ctx.dealers[idx]] += 1;
      }
    }
  }

  // GGOR13 profile: a final dealer confirmation on the second of its two
  // physical-broadcast rounds (the "moderator finalization").
  if (profile_.publish == PublishMode::kEcho) {
    net_.begin_round();
    for (net::PartyId d : ctx.dealers) net_.broadcast(d, {Fld::one()});
    net_.end_round();
  }
  run_padding_rounds();

  // Finalize: append sharings, derive committed share polynomials. The
  // qualification flags live in vector<bool> (adjacent bits share a byte),
  // so they are set serially; the interpolation work — all of the cost —
  // then runs per dealer, each writing only its own pre-sized slots.
  ShareResult result;
  result.qualified.assign(n, true);
  std::vector<std::size_t> base(n, 0);
  for (net::PartyId d : ctx.dealers) {
    const bool ok = accepts[d] >= n - profile_.t;
    result.qualified[d] = ok;
    if (!ok) qualified_[d] = false;
    base[d] = sharings_[d].size();
    sharings_[d].resize(base[d] + batches[d].size());  // zero polys until
                                                       // interpolated
  }
  // Finalize faults found on the worker lanes (one byte per dealer slot, so
  // concurrent writers never share a byte): 1 = too few content parties,
  // 2 = a content share off the interpolated polynomial. Either one means
  // the sharing is unusable; the dealer is disqualified below and every
  // affected share polynomial stays the default zero — degradation instead
  // of an abort, per the paper's convention.
  std::vector<std::uint8_t> finalize_fault(n, 0);
  net_.for_each_party([&](net::PartyId d) {
    const std::size_t m = batches[d].size();
    if (m == 0 || !result.qualified[d]) return;
    // The content honest parties (those without a private conflict) are
    // the same for every index k of this dealer's batch, so the Lagrange
    // basis polynomials L_p(y) of the first t + 1 of them are computed
    // once: g(y) = sum_p y_p * L_p(y).
    std::vector<net::PartyId> content;
    std::vector<Fld> xs;
    for (net::PartyId p = 0; p < n; ++p) {
      if (net_.is_corrupt(p) || ctx.conflicted[p][d]) continue;
      content.push_back(p);
      xs.push_back(eval_point<64>(p));
    }
    if (content.size() < t + 1) {
      finalize_fault[d] = 1;
      return;
    }
    std::vector<Fld> denoms(t + 1, Fld::one());
    for (std::size_t i = 0; i <= t; ++i)
      for (std::size_t jj = 0; jj <= t; ++jj)
        if (jj != i) denoms[i] *= xs[i] - xs[jj];
    ff::batch_inverse(std::span<Fld>(denoms));  // one inversion for the basis
    std::vector<Poly> basis;
    basis.reserve(t + 1);
    for (std::size_t i = 0; i <= t; ++i) {
      Poly b = Poly::constant(Fld::one());
      for (std::size_t jj = 0; jj <= t; ++jj) {
        if (jj == i) continue;
        b = b * Poly{{xs[jj], Fld::one()}};
      }
      basis.push_back(denoms[i] * b);
    }
    for (std::size_t k = 0; k < m; ++k) {
      // Interpolate the committed share polynomial g(y) = F(0, y) from the
      // final shares of content honest parties, then verify every other
      // content honest share lies on it (the qualification invariant).
      Poly g;
      for (std::size_t i = 0; i <= t; ++i) {
        const Fld y = ctx.recv[content[i]][d][k].eval(Fld::zero());
        if (!y.is_zero()) g = g + y * basis[i];
      }
      bool consistent = true;
      for (std::size_t i = t + 1; i < content.size() && consistent; ++i)
        consistent = g.eval(xs[i]) ==
                     ctx.recv[content[i]][d][k].eval(Fld::zero());
      if (!consistent) {
        finalize_fault[d] = 2;
        continue;  // this sharing stays the default zero polynomial
      }
      sharings_[d][base[d] + k].share_poly = std::move(g);
    }
  });
  for (net::PartyId d : ctx.dealers) {
    if (finalize_fault[d] == 0) continue;
    result.qualified[d] = false;
    qualified_[d] = false;
    net_.blame(net::kPublicBlame, d,
               finalize_fault[d] == 1 ? "vss.finalize.too_few_content_parties"
                                      : "vss.finalize.inconsistent_shares");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Reconstruction
// ---------------------------------------------------------------------------

Fld BivariateEngine::committed_share_of(const LinComb& v,
                                        net::PartyId party) const {
  Fld acc = v.constant_term();
  const Fld alpha = eval_point<64>(party);
  for (const auto& [ref, coeff] : v.terms()) {
    GFOR14_EXPECTS(ref.dealer < net_.n());
    GFOR14_EXPECTS(ref.index < sharings_[ref.dealer].size());
    acc += coeff * sharings_[ref.dealer][ref.index].share_poly.eval(alpha);
  }
  return acc;
}

Fld BivariateEngine::committed_value(const LinComb& v) const {
  Fld acc = v.constant_term();
  for (const auto& [ref, coeff] : v.terms()) {
    GFOR14_EXPECTS(ref.dealer < net_.n());
    GFOR14_EXPECTS(ref.index < sharings_[ref.dealer].size());
    acc += coeff *
           sharings_[ref.dealer][ref.index].share_poly.eval(Fld::zero());
  }
  return acc;
}

std::vector<Fld> BivariateEngine::decode_received(
    const std::vector<LinComb>& values,
    const std::vector<std::optional<std::vector<Fld>>>& per_sender) {
  const std::size_t n = net_.n();
  const std::size_t t = profile_.t;
  std::vector<Fld> out(values.size(), Fld::zero());

  if (profile_.recon == ReconMode::kAuthenticated) {
    // Filter each revealed share through the information-checking layer,
    // then interpolate t + 1 accepted shares. Lagrange coefficients come
    // from the process-wide cache keyed by the accepted point set (the
    // common case is a single set across all values and rounds).
    const auto decode_one = [&](std::size_t vi) {
      std::vector<net::PartyId> accepted;
      std::vector<Fld> accepted_vals;
      for (net::PartyId i = 0; i < n && accepted.size() < t + 1; ++i) {
        if (!per_sender[i]) continue;
        const Fld revealed = (*per_sender[i])[vi];
        const Fld expected = committed_share_of(values[vi], i);
        bool accept = revealed == expected;
        if (!accept && profile_.forgery_success_prob > 0.0) {
          const double coin =
              static_cast<double>(net_.adversary_rng().next_u64()) /
              static_cast<double>(~0ULL);
          accept = coin < profile_.forgery_success_prob;
        }
        if (accept) {
          accepted.push_back(i);
          accepted_vals.push_back(revealed);
        }
      }
      if (accepted.size() < t + 1) return;  // default 0 (cannot happen
                                            // with an honest majority)
      std::vector<Fld> xs(accepted.size());
      for (std::size_t i = 0; i < accepted.size(); ++i)
        xs[i] = eval_point<64>(accepted[i]);
      const auto& lambda = LagrangeCache::instance().coefficients(
          std::span<const Fld>(xs), Fld::zero());
      out[vi] = ff::dot(std::span<const Fld>(lambda),
                        std::span<const Fld>(accepted_vals));
    };
    if (profile_.forgery_success_prob > 0.0) {
      // The forgery coin draws from the shared adversary stream in (value,
      // sender) order — that order is part of the determinism contract, so
      // this path stays serial regardless of the thread setting.
      for (std::size_t vi = 0; vi < values.size(); ++vi) decode_one(vi);
    } else {
      ThreadPool::instance().parallel_for(0, values.size(), net_.threads(),
                                          decode_one);
    }
    return out;
  }

  // Error-correction mode (t < n/3): Berlekamp–Welch with a fast path that
  // first tries plain interpolation through the first t + 1 present shares.
  std::vector<Fld> xs;
  std::vector<net::PartyId> present;
  for (net::PartyId i = 0; i < n; ++i) {
    if (!per_sender[i]) continue;
    present.push_back(i);
    xs.push_back(eval_point<64>(i));
  }
  const std::size_t navail = present.size();
  if (navail < t + 1) {
    // Fewer shares than the degree bound: no interpolation is possible, so
    // every value degrades to the canonical default (zero) instead of
    // aborting the honest viewer; the absent senders earn blame records.
    for (net::PartyId i = 0; i < n; ++i)
      if (!per_sender[i])
        net_.blame(net::kPublicBlame, i, "vss.recon.missing_share");
    return out;
  }
  const std::size_t max_errors = navail > t ? (navail - t - 1) / 2 : 0;
  // Precompute, once per call, the Lagrange evaluation rows of the head
  // interpolation at zero and at every tail point: head(x_i) and head(0)
  // are then inner products with the received shares (no per-value
  // interpolation or field inversions).
  const std::span<const Fld> head_x(xs.data(), t + 1);
  auto& lcache = LagrangeCache::instance();
  const auto& lambda0 = lcache.coefficients(head_x, Fld::zero());
  std::vector<const std::vector<Fld>*> tail_rows;
  tail_rows.reserve(navail - (t + 1));
  for (std::size_t i = t + 1; i < navail; ++i)
    tail_rows.push_back(&lcache.coefficients(head_x, xs[i]));
  // Values are independent (pure field arithmetic on precomputed rows), so
  // the viewer-side decode splits across lanes — without it the serial
  // decode would Amdahl-cap reconstruction speedups.
  ThreadPool::instance().parallel_for(
      0, values.size(), net_.threads(), [&](std::size_t vi) {
        std::vector<Fld> ys(navail);
        for (std::size_t i = 0; i < navail; ++i)
          ys[i] = (*per_sender[present[i]])[vi];
        const std::span<const Fld> head_y(ys.data(), t + 1);
        // Fast path: the tail shares lie on the head interpolation.
        bool consistent = true;
        for (std::size_t i = t + 1; i < navail && consistent; ++i) {
          if (ff::dot(std::span<const Fld>(*tail_rows[i - (t + 1)]),
                      head_y) != ys[i])
            consistent = false;
        }
        if (consistent) {
          out[vi] = ff::dot(std::span<const Fld>(lambda0), head_y);
          return;
        }
        auto decoded = berlekamp_welch(xs, ys, t, max_errors);
        if (decoded) out[vi] = decoded->eval(Fld::zero());
      });
  return out;
}

std::vector<Fld> BivariateEngine::reconstruct_public(
    const std::vector<LinComb>& values) {
  const std::size_t n = net_.n();
  trace::Span span("vss.reconstruct_public", net_);
  span.metric("values", static_cast<double>(values.size()));
  // The n× committed_share_of evaluations per sender are the hot path of
  // reconstruction; each sender computes and queues independently.
  net_.run_round([&](net::PartyId i, net::RoundLane& lane) {
    net::Payload payload(values.size());
    charge_share_buffer(values.size());
    for (std::size_t vi = 0; vi < values.size(); ++vi)
      payload[vi] = committed_share_of(values[vi], i);
    for (net::PartyId j = 0; j < n; ++j)
      if (i != j) lane.send(j, payload);
  });
  // Decode from the viewpoint of the lowest-indexed honest party (all honest
  // parties derive the same values — equivocated or corrupted shares are
  // rejected receiver-side).
  net::PartyId viewer = 0;
  while (viewer < n && net_.is_corrupt(viewer)) ++viewer;
  GFOR14_EXPECTS(viewer < n);
  std::vector<std::optional<std::vector<Fld>>> per_sender(n);
  for (net::PartyId i = 0; i < n; ++i) {
    if (i == viewer) {
      std::vector<Fld> own(values.size());
      for (std::size_t vi = 0; vi < values.size(); ++vi)
        own[vi] = committed_share_of(values[vi], viewer);
      per_sender[i] = std::move(own);
      continue;
    }
    const auto& msgs = net_.delivered().p2p[viewer][i];
    if (!msgs.empty() && msgs.front().size() == values.size())
      per_sender[i] = msgs.front();
  }
  return decode_received(values, per_sender);
}

std::vector<Fld> BivariateEngine::reconstruct_private(
    net::PartyId receiver, const std::vector<LinComb>& values) {
  return reconstruct_private_multi({{receiver, values}})[0];
}

std::vector<std::vector<Fld>> BivariateEngine::reconstruct_private_multi(
    const std::vector<PrivateRequest>& requests) {
  const std::size_t n = net_.n();
  trace::Span span("vss.reconstruct_private", net_);
  span.metric("requests", static_cast<double>(requests.size()));
  for (const auto& req : requests) GFOR14_EXPECTS(req.receiver < n);
  // Sender-major iteration (each sender walks the requests in order) keeps
  // every (sender, receiver) channel's message sequence in request order —
  // exactly what the slot-indexed inbox reads below rely on — while letting
  // each sender evaluate its committed shares on its own lane.
  net_.run_round([&](net::PartyId i, net::RoundLane& lane) {
    for (const auto& req : requests) {
      if (i == req.receiver) continue;
      net::Payload payload(req.values.size());
      charge_share_buffer(req.values.size());
      for (std::size_t vi = 0; vi < req.values.size(); ++vi)
        payload[vi] = committed_share_of(req.values[vi], i);
      lane.send(req.receiver, std::move(payload));
    }
  });
  // Per receiver, messages arrive in request order (FIFO per channel), so
  // the r-th request toward a receiver reads that receiver's r-th inbox
  // entry from each sender.
  std::vector<std::size_t> seen_for_receiver(n, 0);
  std::vector<std::vector<Fld>> out;
  out.reserve(requests.size());
  for (const auto& req : requests) {
    const std::size_t slot = seen_for_receiver[req.receiver]++;
    std::vector<std::optional<std::vector<Fld>>> per_sender(n);
    for (net::PartyId i = 0; i < n; ++i) {
      if (i == req.receiver) {
        std::vector<Fld> own(req.values.size());
        for (std::size_t vi = 0; vi < req.values.size(); ++vi)
          own[vi] = committed_share_of(req.values[vi], req.receiver);
        per_sender[i] = std::move(own);
        continue;
      }
      const auto& msgs = net_.delivered().p2p[req.receiver][i];
      if (slot < msgs.size() && msgs[slot].size() == req.values.size())
        per_sender[i] = msgs[slot];
    }
    out.push_back(decode_received(req.values, per_sender));
  }
  return out;
}

}  // namespace gfor14::vss
