#include "vss/packed.hpp"

#include "common/expect.hpp"
#include "ff/batch.hpp"
#include "math/berlekamp_welch.hpp"
#include "math/lagrange_cache.hpp"

namespace gfor14::vss {

PackedSharing::PackedSharing(std::size_t n, std::size_t t, std::size_t k)
    : n_(n), t_(t), k_(k) {
  GFOR14_EXPECTS(k >= 1);
  GFOR14_EXPECTS(n >= t + k);
}

Fld PackedSharing::alpha(std::size_t party) const {
  GFOR14_EXPECTS(party < n_);
  return eval_point<64>(party);  // 1 .. n
}

Fld PackedSharing::beta(std::size_t slot) const {
  GFOR14_EXPECTS(slot < k_);
  // Disjoint from the alpha range.
  return Fld::from_u64(static_cast<std::uint64_t>(n_) + 1 + slot);
}

std::vector<Fld> PackedSharing::deal(Rng& rng,
                                     std::span<const Fld> secrets) const {
  GFOR14_EXPECTS(secrets.size() == k_);
  // Interpolate through the k secret slots plus t random anchor points
  // (at further reserved positions), giving a uniformly random polynomial
  // of degree <= t + k - 1 with the prescribed slot values.
  std::vector<Fld> xs, ys;
  xs.reserve(degree() + 1);
  ys.reserve(degree() + 1);
  for (std::size_t j = 0; j < k_; ++j) {
    xs.push_back(beta(j));
    ys.push_back(secrets[j]);
  }
  for (std::size_t r = 0; r < t_; ++r) {
    xs.push_back(Fld::from_u64(static_cast<std::uint64_t>(n_) + 1 + k_ + r));
    ys.push_back(Fld::random(rng));
  }
  const Poly f = lagrange_interpolate(xs, ys);
  std::vector<Fld> shares(n_);
  for (std::size_t i = 0; i < n_; ++i) shares[i] = f.eval(alpha(i));
  return shares;
}

std::optional<std::vector<Fld>> PackedSharing::reconstruct(
    std::span<const std::size_t> parties, std::span<const Fld> shares) const {
  if (parties.size() != shares.size()) return std::nullopt;
  if (parties.size() < degree() + 1) return std::nullopt;
  std::vector<Fld> xs;
  xs.reserve(parties.size());
  std::vector<bool> seen(n_, false);
  for (std::size_t p : parties) {
    if (p >= n_ || seen[p]) return std::nullopt;
    seen[p] = true;
    xs.push_back(alpha(p));
  }
  const std::span<const Fld> head_x(xs.data(), degree() + 1);
  const std::span<const Fld> head_y(shares.data(), degree() + 1);
  std::vector<Fld> out(k_);
  // Slot evaluations are dots against cached Lagrange rows: the cut-and-
  // choose layer reconstructs at the same party sets round after round, so
  // the coefficient vectors come from the process-wide cache and the inner
  // products go through the dispatched span kernels.
  auto& lcache = LagrangeCache::instance();
  for (std::size_t j = 0; j < k_; ++j) {
    const auto& lambda = lcache.coefficients(head_x, beta(j));
    out[j] = ff::batch::dot<64>(std::span<const Fld>(lambda), head_y);
  }
  return out;
}

std::size_t PackedSharing::max_correctable_errors() const {
  return n_ > degree() ? (n_ - degree() - 1) / 2 : 0;
}

std::optional<std::vector<Fld>> PackedSharing::reconstruct_robust(
    std::span<const Fld> all_shares, std::size_t max_errors) const {
  GFOR14_EXPECTS(all_shares.size() == n_);
  GFOR14_EXPECTS(max_errors <= max_correctable_errors());
  std::vector<Fld> xs(n_);
  for (std::size_t i = 0; i < n_; ++i) xs[i] = alpha(i);
  auto f = berlekamp_welch(xs, all_shares, degree(), max_errors);
  if (!f) return std::nullopt;
  std::vector<Fld> out(k_);
  for (std::size_t j = 0; j < k_; ++j) out[j] = f->eval(beta(j));
  return out;
}

std::size_t PackedSharing::elements_packed(std::size_t m, std::size_t n,
                                           std::size_t k) {
  return ((m + k - 1) / k) * n;
}

std::size_t PackedSharing::elements_plain(std::size_t m, std::size_t n) {
  return m * n;
}

}  // namespace gfor14::vss
