#include "vss/schemes.hpp"

#include "common/expect.hpp"

namespace gfor14::vss {

const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kBGW:
      return "BGW";
    case SchemeKind::kRB:
      return "RB";
    case SchemeKind::kGGOR13:
      return "GGOR13";
  }
  return "?";
}

std::size_t scheme_max_t(SchemeKind kind, std::size_t n) {
  GFOR14_EXPECTS(n >= 2);
  if (kind == SchemeKind::kBGW) return (n - 1) / 3;
  return (n - 1) / 2;
}

std::unique_ptr<VssScheme> make_vss(SchemeKind kind, net::Network& net) {
  return make_vss(kind, net, scheme_max_t(kind, net.n()));
}

std::unique_ptr<VssScheme> make_vss(SchemeKind kind, net::Network& net,
                                    std::size_t t,
                                    double forgery_success_prob) {
  GFOR14_EXPECTS(t <= scheme_max_t(kind, net.n()));
  EngineProfile profile;
  profile.name = scheme_name(kind);
  profile.t = t;
  profile.forgery_success_prob = forgery_success_prob;
  switch (kind) {
    case SchemeKind::kBGW:
      profile.recon = ReconMode::kErrorCorrection;
      profile.publish = PublishMode::kPhysicalBroadcast;
      profile.pad_rounds = 0;  // 9 rounds, 7 broadcast rounds
      break;
    case SchemeKind::kRB:
      profile.recon = ReconMode::kAuthenticated;
      profile.publish = PublishMode::kPhysicalBroadcast;
      profile.pad_rounds = 0;  // 9 rounds (the Rab94 figure), 7 bc rounds
      break;
    case SchemeKind::kGGOR13:
      profile.recon = ReconMode::kAuthenticated;
      profile.publish = PublishMode::kEcho;
      profile.pad_rounds = 5;  // 21 rounds (GGOR13 figure), 2 bc rounds
      break;
  }
  return std::make_unique<BivariateEngine>(net, profile);
}

}  // namespace gfor14::vss
