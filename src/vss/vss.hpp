// Linear verifiable secret sharing — the paper's single black box.
//
// The paper (Section 2.2) requires an (n, t) VSS with:
//   COMMITMENT — after VSS-Share a fixed s* exists, defined by the honest
//     joint view, that VSS-Rec will output (s* = s for an honest dealer);
//   PRIVACY    — an honest dealer's secret is statistically hidden until
//     VSS-Rec;
//   LINEARITY  — public linear combinations of verifiably shared secrets
//     are verifiably shared without further interaction.
//
// Three instantiations are provided behind this interface (see schemes.hpp):
//   BGW      — perfectly secure, t < n/3, reconstruction by Reed–Solomon
//              error correction; fully concrete.
//   RB89     — statistically secure, t < n/2, the paper's headline
//              instantiation (our profile lands on the 9-round Rab94
//              figure of the paper's footnote 7); share authentication
//              at reconstruction uses an
//              information-checking layer (see bivariate_engine.hpp for the
//              concrete/idealized split, and icp.* for the standalone
//              concrete IC protocol).
//   GGOR13   — statistically secure, t < n/2, broadcast-efficient profile:
//              exactly 2 physical-broadcast rounds in sharing and 0 in
//              reconstruction, at the price of more point-to-point rounds
//              (21-round regime); statically secure, as the paper notes.
//
// All sharing is batched and simultaneous: every dealer shares its whole
// vector of secrets in the same synchronous rounds, which is what makes
// AnonChan's round complexity "essentially r_VSS-share".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ff/gf2e.hpp"
#include "net/network.hpp"
#include "vss/share_algebra.hpp"

namespace gfor14::vss {

/// Outcome of the (parallel, batched) sharing phase.
struct ShareResult {
  /// qualified[d] == false means dealer d was publicly disqualified during
  /// sharing; all its sharings then reconstruct to the default value 0.
  std::vector<bool> qualified;
};

/// Per-dealer misbehaviour inside the VSS sharing phase itself.
enum class DealerBehaviour {
  kHonest,
  /// Sends inconsistent (random) slices to half of the parties, then
  /// resolves complaints truthfully — must end qualified and committed.
  kInconsistentThenResolve,
  /// Sends inconsistent slices and refuses to resolve — must end
  /// disqualified.
  kInconsistentRefuse,
  /// Sends nothing at all — must end disqualified.
  kSilent,
};

class VssScheme {
 public:
  virtual ~VssScheme() = default;

  virtual std::size_t n() const = 0;
  /// Corruption threshold this instantiation tolerates.
  virtual std::size_t t() const = 0;
  /// Scheme name for reports ("BGW", "RB89", "GGOR13").
  virtual const char* name() const = 0;

  /// Configures a dealer's behaviour for subsequent share_all calls.
  virtual void set_dealer_behaviour(net::PartyId dealer, DealerBehaviour b) = 0;
  /// Makes corrupt parties raise complaints against honest dealers.
  virtual void set_false_complaints(bool enabled) = 0;

  /// Runs the sharing phase for all dealers in parallel. batches[d] is the
  /// secret vector dealer d shares (may be empty). Sharing (d, k) afterwards
  /// refers to batches[d][k]. Appends to any previously shared batches:
  /// indices continue from the previous share_all.
  virtual ShareResult share_all(
      const std::vector<std::vector<Fld>>& batches) = 0;

  /// Number of sharings dealer d has performed so far.
  virtual std::size_t count(net::PartyId dealer) const = 0;

  /// Public reconstruction of linear combinations: one synchronous round of
  /// share revelation, after which every honest party outputs the same
  /// values (w.h.p. for the statistical schemes). Returns those values.
  virtual std::vector<Fld> reconstruct_public(
      const std::vector<LinComb>& values) = 0;

  /// Private reconstruction toward `receiver`: shares travel only on the
  /// private channels to the receiver, who reconstructs internally
  /// (AnonChan step 4). Returns the receiver's outputs.
  virtual std::vector<Fld> reconstruct_private(
      net::PartyId receiver, const std::vector<LinComb>& values) = 0;

  /// Batched multi-receiver private reconstruction: each request list is
  /// reconstructed toward its own receiver, ALL in the same single round
  /// (every party sends each receiver exactly the shares that receiver
  /// needs). This is what lets n parallel AnonChan instances with distinct
  /// receivers — the Section 4 pseudosignature setup — finish in constant
  /// rounds overall. Returns one output vector per request.
  struct PrivateRequest {
    net::PartyId receiver;
    std::vector<LinComb> values;
  };
  virtual std::vector<std::vector<Fld>> reconstruct_private_multi(
      const std::vector<PrivateRequest>& requests) = 0;

  /// Test oracle: the committed value of a linear combination as defined by
  /// the honest parties' joint view (the s* of the Commitment property).
  /// Not part of the protocol interface; used by tests and by ground-truth
  /// accounting in experiments.
  virtual Fld committed_value(const LinComb& v) const = 0;

  /// Round/broadcast profile of one (batched, parallel) sharing phase, used
  /// by the analytical round-complexity reports.
  virtual std::size_t share_rounds() const = 0;
  virtual std::size_t share_broadcast_rounds() const = 0;
};

}  // namespace gfor14::vss
