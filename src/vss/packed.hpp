// Packed (Franklin–Yung style) secret sharing — the building block of the
// [BFO12]-style compilation the paper's Section 1.2 closes with: "the
// protocols described herein can be compiled via generic techniques into
// more communication-efficient versions".
//
// A single degree-(t + k - 1) polynomial carries k secrets at the reserved
// evaluation points beta_1..beta_k (disjoint from the party points
// alpha_1..alpha_n), so sharing m field elements costs ceil(m/k) * n
// transmitted elements instead of m * n — a factor-k communication saving
// at the price of a higher reconstruction threshold (t + k shares instead
// of t + 1) and a reduced error-correction margin.
//
// This module provides the sharing algebra and quantifies the tradeoff
// (tests + the communication section of bench_vss); wiring it through the
// full VSS machinery (the actual [BFO12] compiler) is future work the
// paper itself only gestures at.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "math/poly.hpp"

namespace gfor14::vss {

class PackedSharing {
 public:
  /// Configuration: n parties, privacy threshold t, k secrets per
  /// polynomial. Requires n >= t + k (reconstruction from all parties) and
  /// distinct evaluation points, which GF(2^64) supplies for any practical
  /// size.
  PackedSharing(std::size_t n, std::size_t t, std::size_t k);

  std::size_t n() const { return n_; }
  std::size_t t() const { return t_; }
  std::size_t k() const { return k_; }
  /// Polynomial degree: t + k - 1.
  std::size_t degree() const { return t_ + k_ - 1; }

  /// Party evaluation point alpha_i and secret slot point beta_j.
  Fld alpha(std::size_t party) const;
  Fld beta(std::size_t slot) const;

  /// Deals one polynomial packing `secrets` (size k): returns the n shares.
  std::vector<Fld> deal(Rng& rng, std::span<const Fld> secrets) const;

  /// Reconstructs the k secrets from shares of the given parties (at least
  /// degree()+1 of them; nullopt when too few or duplicated parties).
  std::optional<std::vector<Fld>> reconstruct(
      std::span<const std::size_t> parties,
      std::span<const Fld> shares) const;

  /// Robust reconstruction with Berlekamp–Welch when all n shares are
  /// present but up to `max_errors` may be wrong. The correctable radius is
  /// (n - degree() - 1) / 2 — packing k secrets costs error tolerance,
  /// which the tests quantify.
  std::optional<std::vector<Fld>> reconstruct_robust(
      std::span<const Fld> all_shares, std::size_t max_errors) const;
  std::size_t max_correctable_errors() const;

  /// Transmitted field elements to share m secrets among n parties:
  /// packed vs plain Shamir (the communication saving of the compilation).
  static std::size_t elements_packed(std::size_t m, std::size_t n,
                                     std::size_t k);
  static std::size_t elements_plain(std::size_t m, std::size_t n);

 private:
  std::size_t n_, t_, k_;
};

}  // namespace gfor14::vss
