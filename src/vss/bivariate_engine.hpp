// The concrete VSS engine behind all three scheme profiles.
//
// Sharing (batched, all dealers in parallel, constant rounds):
//   R1  dealer -> P_i : univariate slices f_i(x) = F(x, alpha_i) of a random
//       symmetric bivariate F with F(0,0) = secret, for every secret in the
//       dealer's batch (private channels);
//   R2  P_i -> P_j    : cross evaluations f_i(alpha_j) (private channels);
//   R3  complaints    : P_i publishes every (dealer, index, j) where P_j's
//       cross value conflicts with P_i's slice;
//   R4  resolution    : the dealer publishes F(alpha_i, alpha_j) for every
//       complained triple;
//   R5  accusations   : parties whose slices conflict with published
//       resolutions accuse the dealer;
//   R6  slice opening : the dealer publishes the accusers' full slices;
//       accusers adopt them, everyone cross-checks;
//   R7  votes         : every party publishes accept/reject per dealer; a
//       dealer with fewer than n - t accepts is disqualified (its sharings
//       default to 0).
//
// "Publishes" means the physical broadcast channel in the BGW and RB89
// profiles, and a two-round point-to-point echo (send, then echo + majority)
// in the broadcast-efficient GGOR13 profile, which spends its only two
// physical-broadcast rounds on the final votes and dealer confirmation.
// Profiles pad with empty synchronization rounds to land on the round
// counts the paper quotes (7 for RB89, 21 for GGOR13), so the cost
// accounting downstream experiments report matches the paper's comparison.
//
// Reconstruction (one round, no broadcast):
//   every party sends its combined share of each requested linear
//   combination to the receiver(s);
//   * BGW profile (t < n/3): the receiver Reed–Solomon-decodes
//     (Berlekamp–Welch) with up to t errors — fully concrete;
//   * RB89/GGOR13 profiles (t < n/2): the receiver verifies each revealed
//     share with the information-checking layer and interpolates t + 1
//     accepted shares.
//
// Information-checking layer: the engine verifies revealed shares against
// the committed share polynomial (the value determined by the honest joint
// view), accepting a forged share only with a configurable probability
// `forgery_success_prob` (default 0) — i.e., it *idealizes* the
// unforgeability that RB89's IC signatures provide with probability
// 1 - 2^-Omega(kappa), including their linearity across dealers. The
// concrete three-party check-vector protocol, with its real keys, tags,
// forgery probability and round cost, is implemented and validated
// standalone in icp.{hpp,cpp}; DESIGN.md discusses why the split preserves
// every property the paper consumes.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "math/bivariate.hpp"
#include "math/poly.hpp"
#include "vss/soa.hpp"
#include "vss/vss.hpp"

namespace gfor14::vss {

enum class ReconMode {
  kErrorCorrection,  ///< Berlekamp–Welch, needs t < n/3.
  kAuthenticated,    ///< IC-filtered interpolation, works for t < n/2.
};

enum class PublishMode {
  kPhysicalBroadcast,  ///< Complaint rounds use the broadcast channel.
  kEcho,               ///< Complaint rounds use p2p send + echo + majority.
};

struct EngineProfile {
  const char* name;
  std::size_t t;
  ReconMode recon;
  PublishMode publish;
  /// Empty synchronization rounds appended to the sharing phase so the
  /// total matches the round count quoted in the paper for this scheme.
  std::size_t pad_rounds;
  /// Probability that a forged share slips past the information-checking
  /// layer (0 = idealized IC; tests use positive values to exercise the
  /// statistical failure path).
  double forgery_success_prob = 0.0;
};

class BivariateEngine final : public VssScheme {
 public:
  BivariateEngine(net::Network& net, EngineProfile profile);

  std::size_t n() const override { return net_.n(); }
  std::size_t t() const override { return profile_.t; }
  const char* name() const override { return profile_.name; }

  void set_dealer_behaviour(net::PartyId dealer, DealerBehaviour b) override;
  void set_false_complaints(bool enabled) override { false_complaints_ = enabled; }

  ShareResult share_all(const std::vector<std::vector<Fld>>& batches) override;

  std::size_t count(net::PartyId dealer) const override;

  std::vector<Fld> reconstruct_public(const std::vector<LinComb>& values) override;
  std::vector<Fld> reconstruct_private(net::PartyId receiver,
                                       const std::vector<LinComb>& values) override;
  std::vector<std::vector<Fld>> reconstruct_private_multi(
      const std::vector<PrivateRequest>& requests) override;

  Fld committed_value(const LinComb& v) const override;

  std::size_t share_rounds() const override;
  std::size_t share_broadcast_rounds() const override;

  /// Whether dealer d is currently qualified (never disqualified so far).
  bool dealer_qualified(net::PartyId d) const { return qualified_[d]; }

 private:
  // --- sharing-phase helpers (see .cpp for the round-by-round logic) ------
  struct ShareCtx;
  void round_distribute_slices(ShareCtx& ctx);
  void round_cross_evaluations(ShareCtx& ctx);
  void publish_round(const std::vector<net::Payload>& per_party,
                     std::vector<net::Payload>& received_by_all,
                     bool force_physical = false);
  void run_padding_rounds();

  Fld committed_share_of(const LinComb& v, net::PartyId party) const;
  /// Batched committed_share_of: out[vi] = the party's committed share of
  /// values[vi], with per-dealer pool evaluations amortized across values
  /// through one span Horner sweep over each touched index range.
  /// Bit-identical to calling committed_share_of per value.
  void committed_shares_into(std::span<const LinComb> values,
                             net::PartyId party, std::span<Fld> out) const;
  std::vector<Fld> decode_received(
      const std::vector<LinComb>& values,
      const std::vector<std::optional<std::vector<Fld>>>& per_sender);

  /// Charges one `vss.alloc.count` / `elements * sizeof(Fld)` worth of
  /// `vss.alloc.bytes` into the network's metrics scope — called wherever a
  /// share vector is staged for the wire. Deterministic (one charge per
  /// logical buffer) and safe from worker lanes (relaxed atomic adds,
  /// totals exact at the round barrier).
  void charge_share_buffer(std::size_t elements) const {
    vss_alloc_count_->add(1);
    vss_alloc_bytes_->add(elements * sizeof(Fld));
    alloc::domain_stats(alloc::Domain::kVss).charge(elements * sizeof(Fld));
  }

  net::Network& net_;
  metrics::Counter* vss_alloc_count_ = nullptr;
  metrics::Counter* vss_alloc_bytes_ = nullptr;
  EngineProfile profile_;
  std::vector<DealerBehaviour> behaviour_;
  bool false_complaints_ = false;

  std::vector<bool> qualified_;
  /// Committed share polynomials g(y) = F(0, y) per dealer, one pool column
  /// per sharing index, stored coefficient-major (vss/soa.hpp): party i's
  /// committed share is the column evaluated at alpha_i; the committed
  /// secret is the x^0 plane. Columns stay zero once disqualified.
  std::vector<SharePool> pools_;
};

}  // namespace gfor14::vss
