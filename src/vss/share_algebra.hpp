// Linear combinations over sharings — the object the Linearity property of
// VSS (Section 2.2) lets parties manipulate without interaction.
//
// A LinComb is sum_k coeff_k * sharing_k + constant, where each sharing is
// identified by (dealer, index within the dealer's batch). Every
// reconstruction in AnonChan is phrased as a LinComb: the challenge
// r = sum_i r^(i), the cut-and-choose differences pi(v) - w, the alleged
// zero entries, consecutive differences of non-zero entries, and the final
// vector v = sum_{PASS} g_i(v^(i)).
#pragma once

#include <cstddef>
#include <vector>

#include "ff/gf2e.hpp"

namespace gfor14::vss {

/// Identifies one sharing: the k-th secret dealt by `dealer`.
struct SharingRef {
  std::size_t dealer = 0;
  std::size_t index = 0;
  friend bool operator==(const SharingRef&, const SharingRef&) = default;
};

class LinComb {
 public:
  LinComb() = default;

  /// The combination consisting of a single sharing.
  static LinComb of(SharingRef ref);
  /// A public constant (no sharings involved).
  static LinComb constant(Fld c);

  LinComb& add(SharingRef ref, Fld coeff);
  LinComb& add_constant(Fld c);
  LinComb& add(const LinComb& other, Fld coeff);

  friend LinComb operator+(const LinComb& a, const LinComb& b);
  friend LinComb operator-(const LinComb& a, const LinComb& b);
  friend LinComb operator*(Fld c, const LinComb& v);

  const std::vector<std::pair<SharingRef, Fld>>& terms() const { return terms_; }
  Fld constant_term() const { return constant_; }

  /// Merges duplicate refs and drops zero coefficients.
  void normalize();

 private:
  std::vector<std::pair<SharingRef, Fld>> terms_;
  Fld constant_ = Fld::zero();
};

}  // namespace gfor14::vss
