#include "vss/soa.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "ff/batch.hpp"

namespace gfor14::vss {

// --- SliceBlock ------------------------------------------------------------

void SliceBlock::assign(std::size_t m, std::size_t coeffs_per_poly) {
  m_ = m;
  stride_ = coeffs_per_poly;
  data_.assign(m * coeffs_per_poly, Fld::zero());
}

Fld SliceBlock::eval_at(std::size_t k, Fld x) const {
  GFOR14_EXPECTS(k < m_);
  Fld acc = Fld::zero();
  for (std::size_t c = stride_; c-- > 0;) acc = acc * x + data_[c * m_ + k];
  return acc;
}

void SliceBlock::eval_all(Fld x, std::span<Fld> out) const {
  GFOR14_EXPECTS(out.size() == m_);
  if (m_ == 0) return;
  if (stride_ == 0) {
    std::fill(out.begin(), out.end(), Fld::zero());
    return;
  }
  std::copy(plane(stride_ - 1).begin(), plane(stride_ - 1).end(), out.begin());
  for (std::size_t c = stride_ - 1; c-- > 0;)
    ff::batch::horner_fold<64>(x, out, plane(c));
}

void SliceBlock::load_kmajor(std::span<const Fld> payload) {
  GFOR14_EXPECTS(payload.size() == m_ * stride_);
  for (std::size_t c = 0; c < stride_; ++c) {
    Fld* dst = data_.data() + c * m_;
    for (std::size_t k = 0; k < m_; ++k) dst[k] = payload[k * stride_ + c];
  }
}

void SliceBlock::store_kmajor(std::span<Fld> payload) const {
  GFOR14_EXPECTS(payload.size() == m_ * stride_);
  for (std::size_t c = 0; c < stride_; ++c) {
    const Fld* src = data_.data() + c * m_;
    for (std::size_t k = 0; k < m_; ++k) payload[k * stride_ + c] = src[k];
  }
}

void SliceBlock::set_poly(std::size_t k, const Poly& p) {
  GFOR14_EXPECTS(k < m_);
  const auto& coeffs = p.coeffs();
  for (std::size_t c = 0; c < stride_; ++c)
    data_[c * m_ + k] = c < coeffs.size() ? coeffs[c] : Fld::zero();
}

// --- BivariateBatch --------------------------------------------------------

void BivariateBatch::build(std::span<const SymmetricBivariate> polys,
                           std::size_t deg) {
  m_ = polys.size();
  dp1_ = deg + 1;
  data_.assign(dp1_ * dp1_ * m_, Fld::zero());
  for (std::size_t k = 0; k < m_; ++k) {
    GFOR14_EXPECTS(polys[k].degree() == deg);
    for (std::size_t i = 0; i < dp1_; ++i)
      for (std::size_t j = 0; j < dp1_; ++j)
        data_[(i * dp1_ + j) * m_ + k] = polys[k].coeff(i, j);
  }
}

void BivariateBatch::slices_at(Fld y0, SliceBlock& out) const {
  out.assign(m_, dp1_);
  for (std::size_t i = 0; i < dp1_; ++i) {
    const std::span<Fld> row = out.plane(i);
    std::copy(plane(i, dp1_ - 1).begin(), plane(i, dp1_ - 1).end(),
              row.begin());
    for (std::size_t j = dp1_ - 1; j-- > 0;)
      ff::batch::horner_fold<64>(y0, row, plane(i, j));
  }
}

// --- SharePool -------------------------------------------------------------

void SharePool::configure(std::size_t coeffs_per_poly) {
  if (planes_.empty()) planes_.resize(coeffs_per_poly);
  GFOR14_EXPECTS(planes_.size() == coeffs_per_poly);
}

std::size_t SharePool::append_zero(std::size_t m) {
  const std::size_t base = count_;
  count_ += m;
  for (auto& p : planes_) p.resize(count_, Fld::zero());
  return base;
}

void SharePool::set_column(std::size_t k, std::span<const Fld> coeffs) {
  GFOR14_EXPECTS(k < count_);
  for (std::size_t c = 0; c < planes_.size(); ++c)
    planes_[c][k] = c < coeffs.size() ? coeffs[c] : Fld::zero();
}

Fld SharePool::eval_one(std::size_t k, Fld alpha) const {
  GFOR14_EXPECTS(k < count_);
  Fld acc = Fld::zero();
  for (std::size_t c = planes_.size(); c-- > 0;)
    acc = acc * alpha + planes_[c][k];
  return acc;
}

void SharePool::eval_range(Fld alpha, std::size_t base,
                           std::span<Fld> out) const {
  GFOR14_EXPECTS(base + out.size() <= count_);
  if (out.empty()) return;
  if (planes_.empty()) {
    std::fill(out.begin(), out.end(), Fld::zero());
    return;
  }
  const std::size_t top = planes_.size() - 1;
  std::copy_n(planes_[top].begin() + base, out.size(), out.begin());
  for (std::size_t c = top; c-- > 0;)
    ff::batch::horner_fold<64>(
        alpha, out,
        std::span<const Fld>(planes_[c].data() + base, out.size()));
}

}  // namespace gfor14::vss
