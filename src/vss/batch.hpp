// Slab bookkeeping for batched sharings.
//
// AnonChan shares, per dealer, a structured batch (vector coordinates,
// permuted copies, permutation encodings, index lists, challenge
// contribution). A Slab names one contiguous sub-range of a dealer's
// sharings so protocol code can address "coordinate k of w_j" without
// manual index arithmetic.
#pragma once

#include <cstddef>
#include <vector>

#include "vss/share_algebra.hpp"

namespace gfor14::vss {

struct Slab {
  std::size_t dealer = 0;
  std::size_t base = 0;  ///< first sharing index within the dealer's batch
  std::size_t size = 0;

  SharingRef ref(std::size_t k) const;
  LinComb lc(std::size_t k) const;
  /// Linear combinations for every element of the slab, in order.
  std::vector<LinComb> all() const;
};

/// Sequentially carves slabs out of a dealer's batch while building it.
class SlabAllocator {
 public:
  explicit SlabAllocator(std::size_t dealer, std::size_t base = 0)
      : dealer_(dealer), next_(base) {}

  Slab take(std::size_t size);
  std::size_t allocated() const { return next_; }

 private:
  std::size_t dealer_;
  std::size_t next_;
};

}  // namespace gfor14::vss
