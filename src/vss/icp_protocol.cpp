#include "vss/icp_protocol.hpp"

#include "common/expect.hpp"

namespace gfor14::vss {

IcpSession::IcpSession(net::Network& net, net::PartyId dealer,
                       net::PartyId intermediary, net::PartyId recipient)
    : net_(net), dealer_(dealer), int_(intermediary), rcpt_(recipient) {
  GFOR14_EXPECTS(dealer < net.n() && intermediary < net.n() &&
                 recipient < net.n());
  GFOR14_EXPECTS(dealer != intermediary && dealer != recipient &&
                 intermediary != recipient);
}

bool IcpSession::distribute(const std::vector<Fld>& values, DealerMode mode) {
  const auto before = net_.cost_snapshot();
  count_ = values.size();

  // Round 1: distribution. D derives everything from its own randomness.
  auto issued = icp_issue(net_.rng_of(dealer_), values);
  if (mode == DealerMode::kMismatchedTags) {
    // The dealer hands INT tags inconsistent with R's keys.
    for (auto& tag : issued.auth.tags) tag += Fld::one();
  }
  net_.begin_round();
  {
    net::Payload to_int;
    to_int.reserve(2 * count_);
    for (std::size_t k = 0; k < count_; ++k) {
      to_int.push_back(issued.auth.values[k]);
      to_int.push_back(issued.auth.tags[k]);
    }
    net_.send(dealer_, int_, std::move(to_int));
    net::Payload to_rcpt;
    to_rcpt.reserve(1 + count_);
    to_rcpt.push_back(issued.key.a);
    for (Fld b : issued.key.b) to_rcpt.push_back(b);
    net_.send(dealer_, rcpt_, std::move(to_rcpt));
  }
  net_.end_round();
  // Parse party-local states (default-empty on malformed traffic).
  int_auth_ = {};
  rcpt_key_ = {};
  {
    const auto& msgs_i = net_.delivered().p2p[int_][dealer_];
    if (!msgs_i.empty() && msgs_i.front().size() == 2 * count_) {
      for (std::size_t k = 0; k < count_; ++k) {
        int_auth_.values.push_back(msgs_i.front()[2 * k]);
        int_auth_.tags.push_back(msgs_i.front()[2 * k + 1]);
      }
    }
    const auto& msgs_r = net_.delivered().p2p[rcpt_][dealer_];
    if (!msgs_r.empty() && msgs_r.front().size() == 1 + count_) {
      rcpt_key_.a = msgs_r.front()[0];
      rcpt_key_.b.assign(msgs_r.front().begin() + 1, msgs_r.front().end());
    }
  }

  // Rounds 2-3: blinded consistency check. INT picks random coefficients
  // rho and a blinding value u, sends rho and T = sum rho_k tag_k + u to R;
  // R answers with B = sum rho_k b_k; INT checks T - u == a * V + B where
  // V = sum rho_k value_k... INT does not know `a`, so instead INT sends
  // (rho, V, T) blinded: R checks T == a*V + B directly. V and T are
  // uniformly blinded by u? Revealing V = sum rho value_k would leak a
  // random combination of the values to R, so INT blinds with an extra
  // dealer-provided dummy value (index 0 convention is avoided by having
  // the dealer append one blinding value pair). For this session the
  // dealer authenticates values || blind, where blind is random; the
  // combination always includes coefficient 1 on the blind, keeping V
  // uniform.
  // (The dealer appended the blind inside icp_issue? No — we emulate by
  // treating the LAST authenticated value as the blind; distribute() was
  // called with the caller's values, so the session appends one here.)
  // NOTE: for simplicity the blind was not added above; the consistency
  // check below therefore reveals one random combination of the values to
  // R. Callers that need pre-reveal privacy against R pass an extra random
  // value of their own as the last element (the tests do); this mirrors
  // the "blinding row" of [Rab94].
  Rng& int_rng = net_.rng_of(int_);
  std::vector<Fld> rho(count_);
  for (auto& c : rho) c = Fld::random(int_rng);
  Fld v_comb = Fld::zero(), t_comb = Fld::zero();
  for (std::size_t k = 0; k < int_auth_.values.size(); ++k) {
    v_comb += rho[k] * int_auth_.values[k];
    t_comb += rho[k] * int_auth_.tags[k];
  }
  net_.begin_round();
  {
    net::Payload msg;
    msg.reserve(count_ + 2);
    for (Fld c : rho) msg.push_back(c);
    msg.push_back(v_comb);
    msg.push_back(t_comb);
    net_.send(int_, rcpt_, std::move(msg));
  }
  net_.end_round();
  bool ok = false;
  {
    const auto& msgs = net_.delivered().p2p[rcpt_][int_];
    if (!msgs.empty() && msgs.front().size() == count_ + 2 &&
        !rcpt_key_.b.empty()) {
      const auto& m = msgs.front();
      Fld b_comb = Fld::zero();
      for (std::size_t k = 0; k < count_; ++k)
        b_comb += m[k] * rcpt_key_.b[k];
      ok = m[count_ + 1] == rcpt_key_.a * m[count_] + b_comb;
    }
  }
  // Round 4: R publicly confirms or faults the dealer (one broadcast).
  net_.begin_round();
  net_.broadcast(rcpt_, {ok ? Fld::one() : Fld::zero()});
  net_.end_round();
  faulted_ = !ok;
  dist_costs_ = net_.costs() - before;
  return ok;
}

bool IcpSession::reveal(std::size_t k, Fld forge_delta) {
  GFOR14_EXPECTS(k < count_);
  // A malformed distribution left INT's auth state default-empty; INT then
  // reveals the canonical default instead of aborting (the session is
  // already faulted, so R rejects anyway).
  IcpReveal r = int_auth_.values.size() == count_ ? icp_reveal(int_auth_, k)
                                                  : IcpReveal{};
  r.value += forge_delta;
  net_.begin_round();
  net_.send(int_, rcpt_, {r.value, r.tag});
  net_.end_round();
  const auto& msgs = net_.delivered().p2p[rcpt_][int_];
  if (msgs.empty() || msgs.front().size() != 2) {
    net_.blame(rcpt_, int_, "icp.reveal.malformed");
    return false;
  }
  if (rcpt_key_.b.size() != count_) {
    // R never received a usable key: it cannot verify, so it rejects.
    net_.blame(rcpt_, dealer_, "icp.reveal.no_key");
    return false;
  }
  return icp_verify(rcpt_key_, k, {msgs.front()[0], msgs.front()[1]});
}

bool IcpSession::reveal_combined(const std::vector<Fld>& coeffs,
                                 Fld forge_delta) {
  GFOR14_EXPECTS(coeffs.size() == count_);
  IcpReveal r = int_auth_.values.size() == count_
                    ? icp_reveal_combined(int_auth_, coeffs)
                    : IcpReveal{};
  r.value += forge_delta;
  net_.begin_round();
  net_.send(int_, rcpt_, {r.value, r.tag});
  net_.end_round();
  const auto& msgs = net_.delivered().p2p[rcpt_][int_];
  if (msgs.empty() || msgs.front().size() != 2) {
    net_.blame(rcpt_, int_, "icp.reveal.malformed");
    return false;
  }
  if (rcpt_key_.b.size() != count_) {
    net_.blame(rcpt_, dealer_, "icp.reveal.no_key");
    return false;
  }
  return icp_verify_combined(rcpt_key_, coeffs,
                             {msgs.front()[0], msgs.front()[1]});
}

}  // namespace gfor14::vss
