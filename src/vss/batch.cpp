#include "vss/batch.hpp"

#include "common/expect.hpp"

namespace gfor14::vss {

SharingRef Slab::ref(std::size_t k) const {
  GFOR14_EXPECTS(k < size);
  return {dealer, base + k};
}

LinComb Slab::lc(std::size_t k) const { return LinComb::of(ref(k)); }

std::vector<LinComb> Slab::all() const {
  std::vector<LinComb> out;
  out.reserve(size);
  for (std::size_t k = 0; k < size; ++k) out.push_back(lc(k));
  return out;
}

Slab SlabAllocator::take(std::size_t size) {
  Slab s{dealer_, next_, size};
  next_ += size;
  return s;
}

}  // namespace gfor14::vss
