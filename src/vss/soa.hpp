// Structure-of-arrays share containers for the VSS hot path.
//
// The bivariate engine's dealing, cross-evaluation and reconstruction loops
// all iterate "for every batch index k, do a tiny polynomial operation" —
// with t + 1 only 2-4 coefficients and k running into the tens of
// thousands. Stored as vector<Poly> (one heap allocation per k), that shape
// is allocation- and dispatch-bound. These containers transpose it:
// coefficient-major planes, each plane a contiguous span over k, so a batch
// of m Horner evaluations becomes `coeffs_per_poly` calls into the wide
// span kernels of ff/batch.hpp instead of m scalar Poly::eval calls.
//
// Equivalence contract: GF(2^k) arithmetic is exact and Horner order is
// preserved plane-by-plane, so every value produced here is bit-identical
// to the per-Poly code it replaced — including the zero coefficients that
// Poly's normalized representation strips (a plane stores them explicitly,
// a payload writes them explicitly; both spell zero). The replay verifier
// and the differential suite in tests/ff_batch_test.cpp enforce this.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ff/gf2e.hpp"
#include "math/bivariate.hpp"
#include "math/poly.hpp"

namespace gfor14::vss {

/// A batch of m univariate polynomials, each with a fixed coefficient count,
/// stored coefficient-major: plane(c)[k] is the x^c coefficient of
/// polynomial k. The SoA replacement for vector<Poly> slice storage.
class SliceBlock {
 public:
  /// Resets to m zero polynomials of `coeffs_per_poly` coefficients each.
  void assign(std::size_t m, std::size_t coeffs_per_poly);

  std::size_t size() const { return m_; }
  std::size_t coeffs_per_poly() const { return stride_; }
  bool empty() const { return m_ == 0; }

  std::span<Fld> plane(std::size_t c) {
    return {data_.data() + c * m_, m_};
  }
  std::span<const Fld> plane(std::size_t c) const {
    return {data_.data() + c * m_, m_};
  }

  /// Horner evaluation of polynomial k at x (cold complaint/accusation
  /// paths; the hot paths use eval_all).
  Fld eval_at(std::size_t k, Fld x) const;

  /// out[k] = polynomial k evaluated at x, one batched Horner sweep.
  /// out.size() must equal size().
  void eval_all(Fld x, std::span<Fld> out) const;

  /// Loads from the wire layout payload[k * coeffs_per_poly + c]; payload
  /// size must be exactly m * coeffs_per_poly.
  void load_kmajor(std::span<const Fld> payload);
  /// Inverse of load_kmajor (builds a dealing payload).
  void store_kmajor(std::span<Fld> payload) const;

  /// Overwrites polynomial k from a normalized Poly (zero-extends).
  void set_poly(std::size_t k, const Poly& p);

 private:
  std::size_t m_ = 0, stride_ = 0;
  std::vector<Fld> data_;  // data_[c * m_ + k]
};

/// Dealer-side SoA view of a batch of symmetric bivariate polynomials:
/// plane (i, j) holds the x^i y^j coefficient of every F_k, expanded from
/// the triangular storage so slice construction is pure span arithmetic.
class BivariateBatch {
 public:
  void build(std::span<const SymmetricBivariate> polys, std::size_t deg);

  std::size_t size() const { return m_; }
  bool empty() const { return m_ == 0; }

  /// Fills `out` with the slice polynomials F_k(x, y0): out.plane(c)[k] is
  /// the x^c coefficient of dealer polynomial k sliced at y0. One batched
  /// Horner sweep over j per coefficient row.
  void slices_at(Fld y0, SliceBlock& out) const;

 private:
  std::span<const Fld> plane(std::size_t i, std::size_t j) const {
    return {data_.data() + (i * dp1_ + j) * m_, m_};
  }

  std::size_t m_ = 0, dp1_ = 0;
  std::vector<Fld> data_;  // data_[(i * dp1_ + j) * m_ + k]
};

/// Growable coefficient-major pool of committed share polynomials for one
/// dealer — the SoA replacement for vector<Sharing>. Columns are appended
/// zero and filled by finalize; evaluation at a party point is one batched
/// Horner sweep over any contiguous index range.
class SharePool {
 public:
  /// Fixes the per-polynomial coefficient count (t + 1); idempotent.
  void configure(std::size_t coeffs_per_poly);

  std::size_t count() const { return count_; }
  std::size_t coeffs_per_poly() const { return planes_.size(); }

  /// Appends m zero polynomials; returns the base index of the new block.
  std::size_t append_zero(std::size_t m);

  std::span<Fld> plane(std::size_t c) { return planes_[c]; }
  std::span<const Fld> plane(std::size_t c) const { return planes_[c]; }

  /// Overwrites polynomial k (coeffs beyond coeffs.size() become zero).
  void set_column(std::size_t k, std::span<const Fld> coeffs);

  /// Horner evaluation of polynomial k at alpha.
  Fld eval_one(std::size_t k, Fld alpha) const;

  /// out[i] = polynomial (base + i) evaluated at alpha, for i < out.size();
  /// requires base + out.size() <= count(). One batched Horner sweep.
  void eval_range(Fld alpha, std::size_t base, std::span<Fld> out) const;

 private:
  std::size_t count_ = 0;
  std::vector<std::vector<Fld>> planes_;  // planes_[c][k]
};

}  // namespace gfor14::vss
