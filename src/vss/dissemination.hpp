// Robust, bandwidth-efficient data dissemination — the protocol-level face
// of the communication-compilation remark in Section 1.2 ([BFO12]).
//
// A dealer wants every party to learn a long public vector (think:
// AnonChan's opened cut-and-choose data) despite up to t corrupt parties
// garbling what they relay. The naive approach echoes the whole vector:
// O(m * n) elements per relay layer. Here the dealer Reed–Solomon-encodes
// the vector into per-party chunks (degree n - 2t - 1 polynomials, one
// evaluation per party), parties echo only their chunks, and every party
// Berlekamp–Welch-decodes through up to t wrong echoes — total relay
// traffic O(m * n / (n - 2t)).
//
// Guarantees (t < n/3, honest dealer): every honest party outputs the
// dealer's vector, regardless of how corrupt parties garble their echoes.
// A corrupt dealer can disseminate garbage (it is the data's source); the
// primitive provides robustness of TRANSPORT, not commitment — that is
// VSS's job.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace gfor14::vss {

struct DisseminationResult {
  /// Per-party decoded vector (nullopt when decoding failed — impossible
  /// for honest parties when the dealer is honest and t < n/3).
  std::vector<std::optional<std::vector<Fld>>> outputs;
  net::CostReport costs;
};

/// Chunk size (coefficients per codeword): n - 2t.
std::size_t dissemination_chunk(std::size_t n, std::size_t t);

/// Relay-layer traffic in field elements for an m-element vector:
/// RS-coded vs naive full echo.
std::size_t dissemination_elements_coded(std::size_t m, std::size_t n,
                                         std::size_t t);
std::size_t dissemination_elements_naive(std::size_t m, std::size_t n);

/// Runs the two-round protocol (dealer distribution, echo + decode).
/// Corrupt parties' echoes are garbled when `garble_corrupt_echoes` (the
/// worst relay behaviour); requires t <= (n - 1) / 3.
DisseminationResult disseminate(net::Network& net, net::PartyId dealer,
                                const std::vector<Fld>& vector_data,
                                bool garble_corrupt_echoes);

}  // namespace gfor14::vss
