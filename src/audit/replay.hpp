// Replay verification against a flight recording (DESIGN.md §10).
//
// PRs 3-4 established the byte-identity determinism contract: the same
// (seeds, fault plan, lane count) replays the exact delivered transcript.
// This module turns that contract into a checkable subsystem. A recording
// (net/recorder.hpp) is the reference; re-executing the recorded
// configuration with a ReplayVerifier attached diffs the live traffic
// against it message by message, in the recorder's canonical order, and
// reports the FIRST divergence as precise coordinates: (round, channel,
// from, to, message sequence, byte offset into the payload). The ad-hoc
// transcript-string comparisons that parallel_engine_test.cpp and
// fault_soak_test.cpp grew up with are promoted into first_divergence(),
// which those suites now call.
//
// Byte offsets index the little-endian byte serialization of the payload
// (8 bytes per field element), matching Fld::serialize. Header-only
// recordings can still certify identity via the running channel digests;
// their divergence reports carry kUnknownOffset when only the digest
// witnesses the difference.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "net/recorder.hpp"

namespace gfor14::audit {

/// First point where a live execution (or a second recording) departs from
/// a reference recording.
struct Divergence {
  static constexpr std::size_t kUnknownOffset = static_cast<std::size_t>(-1);

  std::size_t round = 0;  ///< recording-relative round index (0-based)
  bool broadcast = false;
  net::PartyId from = 0;
  net::PartyId to = 0;  ///< 0 and meaningless for broadcast divergences
  std::size_t seq = 0;  ///< message sequence within its channel that round
  /// Offset of the first differing byte in the payload serialization;
  /// kUnknownOffset when the witness is a digest/log mismatch instead.
  std::size_t byte_offset = kUnknownOffset;
  std::string description;

  /// "round 4, p2p 0->2, msg 1: payloads differ at byte 17 (...)".
  std::string format() const;
};

/// Compares two rounds captured with identical recorder options. Returns
/// the first divergence in canonical order, or nullopt when byte-identical
/// (messages, cost delta, tamper/fault/blame logs). RoundProfile
/// annotations are deliberately NOT compared: wall_us is environmental and
/// the deterministic annotations are derived views, not transcript.
std::optional<Divergence> diff_rounds(const net::RecordedRound& reference,
                                      const net::RecordedRound& candidate);

/// First divergence between two whole recordings; header blocks
/// (provenance, config) are informational and not compared.
std::optional<Divergence> first_divergence(const net::Recording& reference,
                                           const net::Recording& candidate);

/// Live verifier: attach to the network, re-run the recorded
/// configuration, then call finish(). The first divergent round is
/// captured and later rounds are ignored (the transcript is already
/// off-contract; every subsequent round would diverge noisily).
class ReplayVerifier : public net::RoundObserver {
 public:
  explicit ReplayVerifier(net::Recording reference);

  void on_round_end(const net::Network& net,
                    const net::CostReport& delta) override;

  /// Declares the live execution complete: a recording with more rounds
  /// than were replayed becomes a divergence. Returns divergence().
  const std::optional<Divergence>& finish();

  bool ok() const { return !divergence_.has_value(); }
  const std::optional<Divergence>& divergence() const { return divergence_; }
  std::size_t rounds_checked() const { return rounds_checked_; }

 private:
  net::Recording reference_;
  net::Recorder live_;  ///< canonicalizes live rounds exactly like recording
  std::size_t rounds_checked_ = 0;
  std::optional<Divergence> divergence_;
};

}  // namespace gfor14::audit
