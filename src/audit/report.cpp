#include "audit/report.hpp"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

namespace gfor14::audit {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

std::string party_str(net::PartyId p) {
  if (p == net::kPublicBlame) return "public";
  return "P" + std::to_string(p);
}

}  // namespace

std::string render_matrix(const net::Recording& rec) {
  const std::size_t n = rec.n;
  std::vector<std::vector<std::size_t>> p2p(n, std::vector<std::size_t>(n, 0));
  std::vector<std::size_t> bcast(n, 0);
  for (const auto& round : rec.rounds)
    for (const auto& m : round.messages) {
      if (m.from >= n || (!m.broadcast && m.to >= n)) continue;
      if (m.broadcast)
        bcast[m.from] += m.elements;
      else
        p2p[m.from][m.to] += m.elements;
    }

  std::string out = "communication matrix (field elements sent, " +
                    std::to_string(rec.rounds.size()) + " recorded rounds)\n";
  out += fmt("%-8s", "from\\to");
  for (std::size_t to = 0; to < n; ++to)
    out += fmt(" %9s", party_str(static_cast<net::PartyId>(to)).c_str());
  out += fmt(" %9s %9s\n", "bcast", "total");
  std::size_t grand = 0;
  for (std::size_t from = 0; from < n; ++from) {
    out += fmt("%-8s", party_str(static_cast<net::PartyId>(from)).c_str());
    std::size_t row_total = bcast[from];
    for (std::size_t to = 0; to < n; ++to) {
      out += fmt(" %9zu", p2p[from][to]);
      row_total += p2p[from][to];
    }
    out += fmt(" %9zu %9zu\n", bcast[from], row_total);
    grand += row_total;
  }
  out += fmt("%-8s", "recv");
  for (std::size_t to = 0; to < n; ++to) {
    std::size_t col = 0;
    for (std::size_t from = 0; from < n; ++from) col += p2p[from][to];
    out += fmt(" %9zu", col);
  }
  out += fmt(" %9s %9zu\n", "", grand);
  return out;
}

std::string render_timeline(const net::Recording& rec) {
  std::string out = "round timeline (" + std::to_string(rec.rounds.size()) +
                    " recorded rounds)\n";
  out += fmt("%-6s %6s %9s %6s %7s %7s %7s\n", "round", "msgs", "elements",
             "bcast", "tamper", "faults", "blames");
  for (const auto& round : rec.rounds) {
    std::size_t elements = 0, bcasts = 0;
    for (const auto& m : round.messages) {
      elements += m.elements;
      if (m.broadcast) ++bcasts;
    }
    out += fmt("%-6zu %6zu %9zu %6zu %7zu %7zu %7zu\n", round.index,
               round.messages.size(), elements, bcasts, round.tampers.size(),
               round.faults.size(), round.blames.size());
    for (const auto& f : round.faults)
      out += fmt("       fault: %s from=%s hit=%zu delta=%zu\n",
                 net::fault_kind_name(f.spec.kind),
                 party_str(f.spec.from).c_str(), f.messages_hit,
                 f.elements_delta);
    for (const auto& t : round.tampers)
      out += fmt("       tamper: %s %s%s\n",
                 t.broadcast ? "bcast" : "p2p", party_str(t.from).c_str(),
                 t.broadcast ? "" : ("->" + party_str(t.to)).c_str());
    for (const auto& b : round.blames)
      out += fmt("       blame: %s accuses %s: %s\n",
                 party_str(b.accuser).c_str(), party_str(b.accused).c_str(),
                 b.reason.c_str());
  }
  return out;
}

std::string render_attribution(const net::Recording& rec) {
  // Accused -> records; std::map orders kPublicBlame (PartyId(-1)) last,
  // so iterate it twice to surface public verdicts first.
  std::map<net::PartyId, std::vector<const net::BlameRecord*>> by_accused;
  std::size_t total_blames = 0;
  for (const auto& round : rec.rounds)
    for (const auto& b : round.blames) {
      by_accused[b.accused].push_back(&b);
      ++total_blames;
    }

  std::string out =
      "blame attribution (" + std::to_string(total_blames) + " records)\n";
  if (by_accused.empty()) out += "  (no blame records)\n";
  for (const bool public_pass : {true, false})
    for (const auto& [accused, records] : by_accused) {
      const bool any_public = [&] {
        for (const auto* b : records)
          if (b->accuser == net::kPublicBlame) return true;
        return false;
      }();
      if (any_public != public_pass) continue;
      out += "  accused " + party_str(accused) + " (" +
             std::to_string(records.size()) + "):\n";
      for (const auto* b : records)
        out += fmt("    round %zu, accuser %s: %s\n", b->round,
                   party_str(b->accuser).c_str(), b->reason.c_str());
    }

  std::size_t total_faults = 0;
  for (const auto& round : rec.rounds) total_faults += round.faults.size();
  out += "fault events (" + std::to_string(total_faults) + ")\n";
  if (total_faults == 0) out += "  (no fault events)\n";
  for (const auto& round : rec.rounds)
    for (const auto& f : round.faults)
      out += fmt("  round %zu: %s from=%s to=%s hit=%zu delta=%zu\n", f.round,
                 net::fault_kind_name(f.spec.kind),
                 party_str(f.spec.from).c_str(),
                 f.spec.to == net::kAllReceivers ? "*"
                                                 : party_str(f.spec.to).c_str(),
                 f.messages_hit, f.elements_delta);
  return out;
}

namespace {

std::string human_bytes(double b) {
  if (b >= 1024.0 * 1024.0) return fmt("%.1f MiB", b / (1024.0 * 1024.0));
  if (b >= 1024.0) return fmt("%.1f KiB", b / 1024.0);
  return fmt("%.0f B", b);
}

}  // namespace

std::string render_top(const json::Value& doc) {
  const json::Value* snaps = doc.find("snapshots");
  const std::size_t count = snaps ? snaps->size() : 0;
  const double interval =
      doc.find("interval") ? doc.find("interval")->as_double() : 0.0;
  const double stride =
      doc.find("stride") ? doc.find("stride")->as_double() : interval;
  const double rounds =
      doc.find("rounds") ? doc.find("rounds")->as_double() : 0.0;

  std::string out =
      fmt("telemetry: %zu snapshots, %.0f rounds observed "
          "(interval %.0f, effective stride %.0f)\n",
          count, rounds, interval, stride);
  if (count == 0) {
    out += "  (no snapshots)\n";
    return out;
  }

  // Totals come from the last snapshot; rates from the delta between the
  // last two (per round, so they are comparable across sampling intervals).
  const json::Value& last = snaps->at(count - 1);
  const json::Value* prev = count >= 2 ? &snaps->at(count - 2) : nullptr;
  const double last_round =
      last.find("round") ? last.find("round")->as_double() : 0.0;
  const double prev_round =
      prev && prev->find("round") ? prev->find("round")->as_double() : 0.0;
  const double dr = last_round - prev_round;

  out += fmt("%-36s %14s %14s\n", "counter", "total",
             prev ? "per-round*" : "per-round");
  const json::Value* counters = last.find("counters");
  const json::Value* prev_counters = prev ? prev->find("counters") : nullptr;
  if (counters)
    for (const auto& [name, v] : counters->members()) {
      double rate = 0.0;
      if (dr > 0) {
        const json::Value* pv =
            prev_counters ? prev_counters->find(name) : nullptr;
        rate = (v.as_double() - (pv ? pv->as_double() : 0.0)) / dr;
      } else if (last_round > 0) {
        rate = v.as_double() / last_round;
      }
      out += fmt("%-36s %14.0f %14.1f\n", name.c_str(), v.as_double(), rate);
    }
  out += prev ? "  (*rate over the last sampling interval)\n"
              : "  (rate averaged over the whole run)\n";

  const json::Value* env = doc.find("environment");

  // Supervised-engine health (DESIGN.md §14/§15): present only when
  // server.* counters were sampled, i.e. the document came from a
  // supervised run. When the run carried an SLO annotation, structured
  // breach reasons replace the legacy any-session-failed boolean.
  if (counters) {
    const auto cval = [&](const char* key) {
      const json::Value* v = counters->find(key);
      return v ? v->as_double() : 0.0;
    };
    if (cval("server.admitted") > 0) {
      const json::Value* slo = env ? env->find("slo") : nullptr;
      const json::Value* breaches = slo ? slo->find("breaches") : nullptr;
      const bool slo_degraded =
          slo && slo->find("degraded") && slo->find("degraded")->as_bool();
      const bool degraded = cval("server.failed_sessions") > 0 || slo_degraded;
      out += fmt("engine: %s | %.0f admitted, %.0f completed, %.0f retried, "
                 "%.0f attempts failed, %.0f sessions failed\n",
                 degraded ? "DEGRADED" : "healthy", cval("server.admitted"),
                 cval("server.completed"), cval("server.retried"),
                 cval("server.failed"), cval("server.failed_sessions"));
      if (breaches)
        for (const json::Value& b : breaches->items()) {
          const auto field = [&](const char* key) {
            const json::Value* v = b.find(key);
            return v ? v->as_double() : 0.0;
          };
          const std::string name =
              b.find("slo") ? b.find("slo")->as_string() : "?";
          // Delivery/throughput targets are minima, the others maxima —
          // same direction convention as server::SloBreach::describe().
          const bool minimum =
              name == "messages_per_sec" || name == "honest_delivery";
          out += fmt("  slo breach: %s %.2f %s %.2f (since wave %.0f)\n",
                     name.c_str(), field("actual"), minimum ? "<" : ">",
                     field("target"), field("since_wave"));
        }
    }
  }

  if (env == nullptr) return out;
  out += "environment\n";
  if (const json::Value* rss = env->find("rss_bytes"))
    if (rss->size() > 0)
      out += "  rss              " +
             human_bytes(rss->at(rss->size() - 1).as_double()) + "\n";
  if (const json::Value* peak = env->find("peak_rss_bytes"))
    out += "  peak rss         " + human_bytes(peak->as_double()) + "\n";
  if (const json::Value* wall = env->find("wall_us"))
    if (wall->size() > 0)
      out += fmt("  wall             %.1f ms\n",
                 wall->at(wall->size() - 1).as_double() / 1000.0);
  if (const json::Value* rw = env->find("round_wall")) {
    const auto field = [&](const char* key) {
      const json::Value* v = rw->find(key);
      return v ? v->as_double() : 0.0;
    };
    out += fmt("  round wall       p50 %.1f us, p95 %.1f us (%.0f rounds)\n",
               field("p50_us"), field("p95_us"), field("count"));
  }
  if (const json::Value* domains = env->find("alloc_domains")) {
    out += fmt("  %-16s %10s %10s %12s %12s\n", "alloc domain", "allocs",
               "frees", "live", "peak");
    for (const auto& [name, stats] : domains->members()) {
      const auto field = [&](const char* key) {
        const json::Value* v = stats.find(key);
        return v ? v->as_double() : 0.0;
      };
      out += fmt("  %-16s %10.0f %10.0f %12s %12s\n", name.c_str(),
                 field("allocs"), field("deallocs"),
                 human_bytes(field("bytes_live")).c_str(),
                 human_bytes(field("bytes_peak")).c_str());
    }
  }
  return out;
}

}  // namespace gfor14::audit
