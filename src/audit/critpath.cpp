#include "audit/critpath.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace gfor14::audit {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

/// Canonical per-party view of one recorded round: the party's sends in
/// recording order plus their element total.
struct PartySends {
  std::vector<const net::RecordedMessage*> messages;
  std::size_t elements = 0;
};

std::vector<PartySends> sends_by_party(const net::RecordedRound& round,
                                       std::size_t n) {
  std::vector<PartySends> out(n);
  for (const net::RecordedMessage& m : round.messages) {
    if (m.from >= n) continue;  // build_event_graph validates separately
    out[m.from].messages.push_back(&m);
    out[m.from].elements += m.elements;
  }
  return out;
}

constexpr std::uint64_t kBarrierWeight = 1;

std::uint64_t compute_weight(const PartySends& sends) {
  return 1 + static_cast<std::uint64_t>(sends.elements);
}
std::uint64_t send_weight(const net::RecordedMessage& m) {
  return 1 + static_cast<std::uint64_t>(m.elements);
}

}  // namespace

events::EventGraph build_event_graph(const net::Recording& rec) {
  events::EventGraph g;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t prev_barrier = kNone;
  for (const net::RecordedRound& round : rec.rounds) {
    const auto per_party = sends_by_party(round, rec.n);
    const std::size_t barrier =
        g.add({events::EventKind::kBarrier, round.index, 0, 0, kBarrierWeight,
               fmt("barrier r%zu", round.index)});
    for (net::PartyId p = 0; p < rec.n; ++p) {
      const std::size_t compute =
          g.add({events::EventKind::kCompute, round.index, p, 0,
                 compute_weight(per_party[p]),
                 fmt("compute r%zu p%zu", round.index, p)});
      if (prev_barrier != kNone) g.link(prev_barrier, compute);
      std::size_t tail = compute;
      std::size_t seq = 0;
      for (const net::RecordedMessage* m : per_party[p].messages) {
        const std::size_t send =
            g.add({events::EventKind::kSend, round.index, p, seq++,
                   send_weight(*m),
                   fmt("send r%zu p%zu %s->%zu", round.index, p,
                       m->broadcast ? "bc" : "p2p",
                       m->broadcast ? rec.n : static_cast<std::size_t>(m->to))});
        g.link(tail, send);
        tail = send;
      }
      g.link(tail, barrier);
    }
    // Messages whose sender is out of range produce a malformed graph via
    // an out-of-range edge, which validate() reports. The endpoint must
    // stay invalid no matter how many nodes later rounds add, so it hangs
    // off the top of the id space rather than off the current node count.
    for (const net::RecordedMessage& m : round.messages)
      if (m.from >= rec.n)
        g.link(static_cast<std::size_t>(-1) - m.from, barrier);
    prev_barrier = barrier;
  }
  return g;
}

events::EventGraph build_schedule_graph(
    const std::vector<ScheduleRecord>& log) {
  events::EventGraph g;
  // Attempt nodes keyed (session, attempt); wave barriers keyed by wave.
  std::map<std::pair<std::uint64_t, std::size_t>, std::size_t> attempts;
  std::map<std::size_t, std::vector<std::size_t>> wave_members;
  std::map<std::pair<std::uint64_t, std::size_t>, std::size_t> retries;
  for (const ScheduleRecord& r : log) {
    switch (r.kind) {
      case ScheduleRecord::Kind::kComplete:
      case ScheduleRecord::Kind::kFail: {
        const std::size_t node = g.add(
            {events::EventKind::kAttempt, r.wave, r.session_id, r.attempt,
             1 + static_cast<std::uint64_t>(r.attempt),
             fmt("s%llu#%zu %s", static_cast<unsigned long long>(r.session_id),
                 r.attempt,
                 r.kind == ScheduleRecord::Kind::kComplete ? "ok" : "fail")});
        attempts[{r.session_id, r.attempt}] = node;
        wave_members[r.wave].push_back(node);
        break;
      }
      case ScheduleRecord::Kind::kRetry: {
        // Weight = the backoff it imposes, in waves.
        const std::uint64_t backoff =
            r.eligible_wave > r.wave ? r.eligible_wave - r.wave : 1;
        const std::size_t node = g.add(
            {events::EventKind::kRetry, r.wave, r.session_id, r.attempt,
             backoff,
             fmt("retry s%llu#%zu +%llu",
                 static_cast<unsigned long long>(r.session_id), r.attempt,
                 static_cast<unsigned long long>(backoff))});
        retries[{r.session_id, r.attempt}] = node;
        break;
      }
      case ScheduleRecord::Kind::kAdmit:
      case ScheduleRecord::Kind::kGiveUp:
        break;  // queue bookkeeping; no logical work of their own
    }
  }
  // Wave barriers, chained in wave order; every attempt feeds its wave's
  // barrier and hangs off the previous one.
  std::size_t prev_barrier = static_cast<std::size_t>(-1);
  for (const auto& [wave, members] : wave_members) {
    const std::size_t barrier =
        g.add({events::EventKind::kBarrier, wave, 0, 0, kBarrierWeight,
               fmt("wave %zu", wave)});
    for (std::size_t node : members) {
      if (prev_barrier != static_cast<std::size_t>(-1))
        g.link(prev_barrier, node);
      g.link(node, barrier);
    }
    prev_barrier = barrier;
  }
  // Retry lineage: attempt k -> its retry -> attempt k+1.
  for (const auto& [key, retry_node] : retries) {
    const auto attempt = attempts.find(key);
    if (attempt != attempts.end()) g.link(attempt->second, retry_node);
    const auto next = attempts.find({key.first, key.second + 1});
    if (next != attempts.end()) g.link(retry_node, next->second);
  }
  return g;
}

std::optional<CritPathReport> analyze(const net::Recording& rec,
                                      std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<CritPathReport> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (rec.rounds.empty()) return fail("recording has no rounds");
  for (const net::RecordedRound& round : rec.rounds)
    for (const net::RecordedMessage& m : round.messages)
      if (m.from >= rec.n || (!m.broadcast && m.to >= rec.n))
        return fail(fmt("round %zu: message endpoint out of range (n=%zu)",
                        round.index, rec.n));

  events::EventGraph graph = build_event_graph(rec);
  if (const auto problem = graph.validate())
    return fail("malformed event graph: " + *problem);

  CritPathReport report;
  std::map<net::PartyId, std::size_t> dominance;
  std::map<std::string, std::size_t> phase_index;
  for (const net::RecordedRound& round : rec.rounds) {
    const auto per_party = sends_by_party(round, rec.n);
    RoundCritPath rc;
    rc.round = round.index;
    rc.wall_us = round.profile.wall_us;
    rc.phase = round.profile.phase;
    // The layered graph's per-round critical chain is just the max over
    // parties of compute + sends; computing it directly keeps the report
    // exact while graph.critical_weight() cross-checks the DAG below.
    std::uint64_t best_chain = 0;
    for (net::PartyId p = 0; p < rec.n; ++p) {
      std::uint64_t chain = compute_weight(per_party[p]);
      for (const net::RecordedMessage* m : per_party[p].messages)
        chain += send_weight(*m);
      if (chain > best_chain) {
        best_chain = chain;
        rc.dominant = p;
      }
    }
    const PartySends& dom = per_party[rc.dominant];
    rc.messages = dom.messages.size();
    rc.elements = dom.elements;
    rc.weight = best_chain + kBarrierWeight;
    // Segments: the dominant party's compute, its sends, the merge barrier.
    rc.segments.push_back({"compute", compute_weight(dom), 0.0});
    std::uint64_t send_total = 0;
    for (const net::RecordedMessage* m : dom.messages)
      send_total += send_weight(*m);
    if (send_total > 0) rc.segments.push_back({"send", send_total, 0.0});
    rc.segments.push_back({"merge", kBarrierWeight, 0.0});
    // Wall distribution: proportional to weight, last segment takes the
    // exact remainder so the per-round segment sum reconciles bit-for-bit
    // with the recorded round wall.
    if (rc.wall_us > 0.0) {
      double assigned = 0.0;
      for (std::size_t i = 0; i < rc.segments.size(); ++i) {
        if (i + 1 == rc.segments.size()) {
          rc.segments[i].wall_us = rc.wall_us - assigned;
        } else {
          rc.segments[i].wall_us =
              rc.wall_us * static_cast<double>(rc.segments[i].weight) /
              static_cast<double>(rc.weight);
          assigned += rc.segments[i].wall_us;
        }
      }
    }
    report.total_weight += rc.weight;
    report.total_wall_us += rc.wall_us;
    ++dominance[rc.dominant];

    const std::string phase_key = rc.phase.empty() ? "(untraced)" : rc.phase;
    auto [it, inserted] =
        phase_index.try_emplace(phase_key, report.phases.size());
    if (inserted) {
      PhaseAttribution attr;
      attr.phase = phase_key;
      report.phases.push_back(std::move(attr));
    }
    PhaseAttribution& attr = report.phases[it->second];
    ++attr.rounds;
    attr.messages += round.messages.size();
    for (const net::RecordedMessage& m : round.messages)
      attr.elements += m.elements;
    attr.net_alloc_count += round.profile.net_alloc_count;
    attr.net_alloc_bytes += round.profile.net_alloc_bytes;
    attr.vss_alloc_count += round.profile.vss_alloc_count;
    attr.vss_alloc_bytes += round.profile.vss_alloc_bytes;
    attr.wall_us += round.profile.wall_us;

    report.rounds.push_back(std::move(rc));
  }

  // Cross-check: the generic longest-path over the DAG must agree with the
  // layered per-round computation. A disagreement means the builder and the
  // analysis have diverged — treat as malformed rather than report one of
  // two different answers.
  if (graph.critical_weight() != report.total_weight)
    return fail(fmt("event graph critical weight %llu disagrees with "
                    "per-round chain sum %llu",
                    static_cast<unsigned long long>(graph.critical_weight()),
                    static_cast<unsigned long long>(report.total_weight)));

  for (const auto& [party, rounds] : dominance)
    if (rounds > report.dominant_rounds) {
      report.dominant_rounds = rounds;
      report.dominant_party = party;
    }
  return report;
}

json::Value CritPathReport::to_json(bool include_wall) const {
  json::Value doc = json::Value::object();
  doc.set("total_weight", static_cast<double>(total_weight));
  doc.set("dominant_party", static_cast<double>(dominant_party));
  doc.set("dominant_rounds", static_cast<double>(dominant_rounds));
  if (include_wall) doc.set("total_wall_us", total_wall_us);
  json::Value rounds_json = json::Value::array();
  for (const RoundCritPath& r : rounds) {
    json::Value o = json::Value::object();
    o.set("round", static_cast<double>(r.round));
    o.set("dominant", static_cast<double>(r.dominant));
    o.set("weight", static_cast<double>(r.weight));
    o.set("messages", static_cast<double>(r.messages));
    o.set("elements", static_cast<double>(r.elements));
    o.set("phase", r.phase);
    json::Value segs = json::Value::array();
    for (const RoundSegment& s : r.segments) {
      json::Value so = json::Value::object();
      so.set("name", s.name);
      so.set("weight", static_cast<double>(s.weight));
      if (include_wall) so.set("wall_us", s.wall_us);
      segs.push_back(std::move(so));
    }
    o.set("segments", std::move(segs));
    if (include_wall) o.set("wall_us", r.wall_us);
    rounds_json.push_back(std::move(o));
  }
  doc.set("rounds", std::move(rounds_json));
  json::Value phases_json = json::Value::array();
  for (const PhaseAttribution& p : phases) {
    json::Value o = json::Value::object();
    o.set("phase", p.phase);
    o.set("rounds", static_cast<double>(p.rounds));
    o.set("messages", static_cast<double>(p.messages));
    o.set("elements", static_cast<double>(p.elements));
    o.set("net_alloc_count", static_cast<double>(p.net_alloc_count));
    o.set("net_alloc_bytes", static_cast<double>(p.net_alloc_bytes));
    o.set("vss_alloc_count", static_cast<double>(p.vss_alloc_count));
    o.set("vss_alloc_bytes", static_cast<double>(p.vss_alloc_bytes));
    if (include_wall) o.set("wall_us", p.wall_us);
    phases_json.push_back(std::move(o));
  }
  doc.set("phases", std::move(phases_json));
  return doc;
}

std::string render_critpath(const CritPathReport& report, bool with_wall) {
  std::string out;
  out += fmt("critical path: %zu rounds, total weight %llu, dominant party "
             "%zu (%zu/%zu rounds)\n",
             report.rounds.size(),
             static_cast<unsigned long long>(report.total_weight),
             static_cast<std::size_t>(report.dominant_party),
             report.dominant_rounds, report.rounds.size());
  out += with_wall
             ? "round  party   weight  msgs  elems      wall_us  phase\n"
             : "round  party   weight  msgs  elems  phase\n";
  for (const RoundCritPath& r : report.rounds) {
    const std::string phase = r.phase.empty() ? "-" : r.phase;
    if (with_wall)
      out += fmt("%5zu  %5zu  %7llu  %4zu  %5zu  %11.1f  %s\n", r.round,
                 static_cast<std::size_t>(r.dominant),
                 static_cast<unsigned long long>(r.weight), r.messages,
                 r.elements, r.wall_us, phase.c_str());
    else
      out += fmt("%5zu  %5zu  %7llu  %4zu  %5zu  %s\n", r.round,
                 static_cast<std::size_t>(r.dominant),
                 static_cast<unsigned long long>(r.weight), r.messages,
                 r.elements, phase.c_str());
  }
  out += "\nphase attribution (deterministic counters):\n";
  out += "rounds   elems  net.alloc         vss.alloc         phase\n";
  for (const PhaseAttribution& p : report.phases)
    out += fmt("%6zu  %6zu  %4llu/%-10llu  %4llu/%-10llu  %s\n", p.rounds,
               p.elements, static_cast<unsigned long long>(p.net_alloc_count),
               static_cast<unsigned long long>(p.net_alloc_bytes),
               static_cast<unsigned long long>(p.vss_alloc_count),
               static_cast<unsigned long long>(p.vss_alloc_bytes),
               p.phase.c_str());
  return out;
}

std::string render_waterfall(const CritPathReport& report, std::size_t width) {
  if (width == 0) width = 48;
  std::string out;
  // Scale to the slowest round (or heaviest, when the recording predates
  // wall annotations).
  double max_wall = 0.0;
  std::uint64_t max_weight = 0;
  for (const RoundCritPath& r : report.rounds) {
    max_wall = std::max(max_wall, r.wall_us);
    max_weight = std::max(max_weight, r.weight);
  }
  const bool use_wall = max_wall > 0.0;
  out += use_wall ? fmt("latency waterfall: %zu rounds, total %.1f us "
                        "(segments: #=compute =send .=merge)\n",
                        report.rounds.size(), report.total_wall_us)
                  : fmt("latency waterfall: %zu rounds, logical weights (no "
                        "wall recorded; segments: #=compute =send .=merge)\n",
                        report.rounds.size());
  for (const RoundCritPath& r : report.rounds) {
    const double total = use_wall ? r.wall_us : static_cast<double>(r.weight);
    const double scale = use_wall ? max_wall : static_cast<double>(max_weight);
    std::string bar;
    for (const RoundSegment& s : r.segments) {
      const double share = use_wall ? s.wall_us : static_cast<double>(s.weight);
      const std::size_t cells =
          scale > 0.0 ? static_cast<std::size_t>(share / scale *
                                                 static_cast<double>(width))
                      : 0;
      const char glyph =
          s.name == "compute" ? '#' : (s.name == "send" ? '=' : '.');
      bar.append(cells, glyph);
    }
    if (bar.empty() && total > 0.0) bar = ".";
    const std::string phase = r.phase.empty() ? "-" : r.phase;
    out += use_wall ? fmt("%5zu %10.1f us  p%-2zu |%-*s| %s\n", r.round,
                          r.wall_us, static_cast<std::size_t>(r.dominant),
                          static_cast<int>(width), bar.c_str(), phase.c_str())
                    : fmt("%5zu %10llu w   p%-2zu |%-*s| %s\n", r.round,
                          static_cast<unsigned long long>(r.weight),
                          static_cast<std::size_t>(r.dominant),
                          static_cast<int>(width), bar.c_str(), phase.c_str());
  }
  return out;
}

}  // namespace gfor14::audit
