// Regression diff between two BENCH_*.json artifacts (bench/bench_json.hpp).
//
// Rows are matched positionally (artifacts from the same bench binary sweep
// the same configurations in the same order); every numeric field shared by
// a matched row pair is compared by relative change. Changes beyond the
// threshold are flagged. Most artifact fields measure costs (wall time,
// elements, rounds), where "up is worse"; throughput-style fields
// (*_per_sec, *_mb_s, *speedup*, *throughput*) are recognized as
// higher-is-better and flag on decreases instead. Structural mismatches
// (different experiment, missing rows or fields, non-numeric type changes)
// become notes rather than silent skips: a diff that could not compare
// everything says so. When the two artifacts carry different schema
// versions, fields present on only one side are expected — they collapse
// into a single note listing the skipped keys and the diff covers the
// intersection.
//
// Gates turn the diff into a blocking CI check: a gate names a key (full
// dotted path or dotted suffix, e.g. "p2p_elements_per_sec") and a tighter
// per-key threshold. With gates active, has_regression() — and therefore
// the gfor14-audit exit code — considers only gated fields, so a blocking
// job can pin the deterministic keys (element throughput, logical alloc
// bytes) without going flaky on wall-clock noise in the other fields, which
// stay visible as informational lines.
//
// Ceilings (`--max KEY=VALUE`) are absolute bounds on the CANDIDATE value,
// independent of the baseline: the profiler CI job pins
// "profiling.overhead_pct" under its 5% budget this way (diffing an
// artifact against itself makes every relative delta vanish while the
// ceiling still applies). A breached ceiling always blocks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace gfor14::audit {

/// A blocking per-key threshold. `key` matches a compared field when it
/// equals the full dotted key or a dotted suffix of it ("p2p_elements_per_sec"
/// matches "telemetry.p2p_elements_per_sec").
struct GateSpec {
  std::string key;
  double threshold = 0.15;  ///< relative change (0.15 = 15%)
};

/// A blocking absolute ceiling on the candidate's value for a key (same
/// full-dotted-key-or-dotted-suffix matching as GateSpec).
struct CeilingSpec {
  std::string key;
  double max = 0.0;  ///< candidate value above this blocks
};

/// One numeric field whose relative change exceeded its threshold.
struct BenchDelta {
  std::size_t row = 0;  ///< row index in both artifacts
  std::string key;      ///< dotted for nested fields ("phases.commit.ms")
  double baseline = 0.0;
  double candidate = 0.0;
  double rel = 0.0;  ///< (candidate - baseline) / |baseline|
  bool higher_is_better = false;
  bool gated = false;    ///< matched a GateSpec (compared at its threshold)
  bool ceiling = false;  ///< breached a CeilingSpec (baseline holds the max)
  bool regression() const {
    return ceiling || (higher_is_better ? rel < 0 : rel > 0);
  }
};

struct BenchDiffResult {
  std::string experiment;
  double threshold = 0.2;
  std::size_t fields_compared = 0;
  std::size_t gates_active = 0;     ///< number of GateSpecs supplied
  std::size_t ceilings_active = 0;  ///< number of CeilingSpecs supplied
  std::vector<BenchDelta> deltas;   ///< changes beyond threshold
  std::vector<std::string> notes;   ///< structural mismatches
  bool clean() const { return deltas.empty() && notes.empty(); }
  /// With gates or ceilings active only gated/ceiling regressions block;
  /// otherwise any does.
  bool has_regression() const {
    for (const auto& d : deltas)
      if (d.regression() &&
          (gates_active + ceilings_active == 0 || d.gated || d.ceiling))
        return true;
    return false;
  }
  std::string format() const;
};

/// True when the field name reads as a throughput (higher is better):
/// last dotted segment contains "per_sec", "_mb_s", "speedup" or
/// "throughput".
bool higher_is_better(const std::string& key);

/// Diffs two parsed artifacts. `threshold` is the relative change above
/// which a field is flagged (0.2 = 20%); a matching gate's threshold takes
/// precedence for that field. Fields equal to zero in the baseline are
/// flagged whenever the candidate is nonzero.
BenchDiffResult bench_diff(const json::Value& baseline,
                           const json::Value& candidate,
                           double threshold = 0.2,
                           const std::vector<GateSpec>& gates = {},
                           const std::vector<CeilingSpec>& ceilings = {});

}  // namespace gfor14::audit
