// Regression diff between two BENCH_*.json artifacts (bench/bench_json.hpp).
//
// Rows are matched positionally (artifacts from the same bench binary sweep
// the same configurations in the same order); every numeric field shared by
// a matched row pair is compared by relative change. Changes beyond the
// threshold are flagged — increases as regressions, decreases as
// improvements (artifact rows measure costs: wall time, elements, rounds —
// so "up is worse" is the right default reading). Structural mismatches
// (different experiment, missing rows or fields, non-numeric type changes)
// become notes rather than silent skips: a diff that could not compare
// everything says so.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace gfor14::audit {

/// One numeric field whose relative change exceeded the threshold.
struct BenchDelta {
  std::size_t row = 0;  ///< row index in both artifacts
  std::string key;      ///< dotted for nested fields ("phases.commit.ms")
  double baseline = 0.0;
  double candidate = 0.0;
  double rel = 0.0;  ///< (candidate - baseline) / |baseline|
  bool regression() const { return rel > 0; }
};

struct BenchDiffResult {
  std::string experiment;
  double threshold = 0.2;
  std::size_t fields_compared = 0;
  std::vector<BenchDelta> deltas;   ///< changes beyond threshold
  std::vector<std::string> notes;   ///< structural mismatches
  bool clean() const { return deltas.empty() && notes.empty(); }
  bool has_regression() const {
    for (const auto& d : deltas)
      if (d.regression()) return true;
    return false;
  }
  std::string format() const;
};

/// Diffs two parsed artifacts. `threshold` is the relative change above
/// which a field is flagged (0.2 = 20%). Fields equal to zero in the
/// baseline are flagged whenever the candidate is nonzero.
BenchDiffResult bench_diff(const json::Value& baseline,
                           const json::Value& candidate,
                           double threshold = 0.2);

}  // namespace gfor14::audit
