// Causal critical-path profiler (DESIGN.md §15).
//
// Builds event graphs (common/events.hpp) from the two deterministic streams
// the repo records and answers "where did this run's time go":
//
//  * build_event_graph(Recording): per round r, one compute node per party
//    (weight 1 + elements the party sends that round), one send node per
//    delivered message in canonical order (weight 1 + payload elements),
//    and one barrier node (weight 1) that merges the round. Causal edges:
//    barrier(r-1) -> compute(r,p) -> that party's sends, in sequence ->
//    barrier(r). The critical path through this DAG names, per round, the
//    party whose compute+send chain dominates — a LOGICAL model of the
//    synchronous network (weights are element counts, not microseconds), so
//    the path is byte-identical across lane counts, exactly like the
//    recording it came from.
//
//  * build_schedule_graph(ScheduleRecord log): one attempt node per executed
//    attempt (weight 1 + attempt's ordinal: later attempts carry their
//    retries' queueing), retry nodes for requeues, wave barriers merging
//    each wave. Retry lineage (attempt k -> retry -> attempt k+1) plus
//    wave-barrier edges reproduce the supervisor's logical timeline; the
//    critical path names the session chain that stretched the run.
//
// Wall-clock enters ONLY in the waterfall view: each round's recorded wall
// (RoundProfile.wall_us, the recorder's view of the round's
// net.round_wall_us sample) is distributed across the round's critical
// segments proportionally to their logical weights, with the final segment
// taking the exact remainder — so per round, segment walls sum to the
// recorded wall bit-for-bit. analyze() also attributes the deterministic
// net.alloc.* / vss.alloc.* deltas to phases via the rounds' recorded
// phase annotations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/events.hpp"
#include "common/json.hpp"
#include "net/recorder.hpp"

namespace gfor14::audit {

/// Server-agnostic mirror of one supervisor ScheduleEvent (kept here so the
/// audit layer needs no dependency on src/server).
struct ScheduleRecord {
  enum class Kind : std::uint8_t { kAdmit, kComplete, kFail, kRetry, kGiveUp };
  Kind kind = Kind::kAdmit;
  std::size_t wave = 0;
  std::uint64_t session_id = 0;
  std::size_t attempt = 0;
  std::size_t eligible_wave = 0;  ///< kRetry only
};

/// One segment of a round's critical chain. `weight` is logical; `wall_us`
/// is that segment's share of the round's recorded wall (0 when the report
/// was built without wall distribution).
struct RoundSegment {
  std::string name;  ///< "compute" | "send" | "merge"
  std::uint64_t weight = 0;
  double wall_us = 0.0;
};

/// The critical chain of one recorded round.
struct RoundCritPath {
  std::size_t round = 0;
  net::PartyId dominant = 0;   ///< party owning the max-weight chain
  std::uint64_t weight = 0;    ///< chain weight (sum of segments)
  std::size_t messages = 0;    ///< messages the dominant party sent
  std::size_t elements = 0;    ///< elements the dominant party sent
  double wall_us = 0.0;        ///< the round's recorded wall (environmental)
  std::string phase;           ///< recorded phase annotation ("" = untraced)
  std::vector<RoundSegment> segments;
};

/// Deterministic counters summed over the rounds annotated with one phase.
struct PhaseAttribution {
  std::string phase;  ///< "(untraced)" for rounds without an annotation
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::size_t elements = 0;
  std::uint64_t net_alloc_count = 0;
  std::uint64_t net_alloc_bytes = 0;
  std::uint64_t vss_alloc_count = 0;
  std::uint64_t vss_alloc_bytes = 0;
  double wall_us = 0.0;  ///< environmental
};

struct CritPathReport {
  std::vector<RoundCritPath> rounds;
  /// Phase attribution in order of first appearance in the recording.
  std::vector<PhaseAttribution> phases;
  std::uint64_t total_weight = 0;
  double total_wall_us = 0.0;
  /// Party with the largest summed chain weight over all rounds (ties to
  /// the smaller id).
  net::PartyId dominant_party = 0;
  std::size_t dominant_rounds = 0;  ///< rounds that party dominates

  /// Deterministic block always included; wall fields (per-segment shares,
  /// per-round wall, phase wall) only when `include_wall`.
  json::Value to_json(bool include_wall) const;
};

/// The per-round message DAG of a recording. Always structurally valid for
/// a recording our recorder produced; validate() is the caller's guard
/// against hand-edited or corrupt inputs.
events::EventGraph build_event_graph(const net::Recording& rec);

/// The supervisor's wave/retry DAG. Records may arrive in any order; they
/// are bucketed by wave internally.
events::EventGraph build_schedule_graph(
    const std::vector<ScheduleRecord>& log);

/// Full analysis of a recording: per-round critical chains, phase
/// attribution, dominance. Fails (nullopt + diagnostic) when the derived
/// event graph does not validate — malformed recordings must not produce
/// plausible-looking profiles.
std::optional<CritPathReport> analyze(const net::Recording& rec,
                                      std::string* error = nullptr);

/// Human-readable critical-path table. Deterministic: wall columns appear
/// only when `with_wall` (the default `gfor14-audit critpath` output is
/// byte-identical across lane counts).
std::string render_critpath(const CritPathReport& report, bool with_wall);

/// Per-round latency waterfall: one bar per round, recorded wall split
/// across the round's critical segments (exact reconciliation per round).
std::string render_waterfall(const CritPathReport& report, std::size_t width);

}  // namespace gfor14::audit
