// Human-readable audit views over a flight recording (DESIGN.md §10).
//
// A Recording already contains everything the paper's accountability story
// needs to be inspected after the fact: who talked to whom and how much,
// what happened round by round, and which parties were blamed for which
// observed faults. These renderers turn that stream into terminal tables
// for the gfor14-audit CLI; they read only the Recording (never a live
// network), so any archived recording can be audited offline.
#pragma once

#include <string>

#include "common/json.hpp"
#include "net/recorder.hpp"

namespace gfor14::audit {

/// Per-party communication matrix: p2p field elements sent from row party
/// to column party, plus per-sender broadcast totals and per-party sums.
std::string render_matrix(const net::Recording& rec);

/// Per-round timeline: message/element counts, adversary tampers, fault
/// events and new blame records for each recorded round.
std::string render_timeline(const net::Recording& rec);

/// Blame & fault attribution: every blame record grouped by accused party
/// (public verdicts first), then the full fault-event log.
std::string render_attribution(const net::Recording& rec);

/// `top`-style resource view over a telemetry document
/// (telemetry::TelemetrySampler::to_json(), or the `telemetry` block of a
/// schema-3 BENCH artifact): per-counter totals with rates over the last
/// sampling interval, then the environment block (RSS, round-wall p50/p95,
/// allocation-domain ledger) when present. Works live (gfor14_cli --top
/// renders the sampler at exit) and offline (gfor14-audit top FILE).
std::string render_top(const json::Value& telemetry_doc);

}  // namespace gfor14::audit
