#include "audit/replay.hpp"

#include <algorithm>

namespace gfor14::audit {

namespace {

std::string channel_str(bool broadcast, net::PartyId from, net::PartyId to) {
  if (broadcast) return "bcast " + std::to_string(from);
  return "p2p " + std::to_string(from) + "->" + std::to_string(to);
}

std::string coords_str(const net::RecordedMessage& m) {
  return channel_str(m.broadcast, m.from, m.to) + " seq " +
         std::to_string(m.seq);
}

/// Offset of the first differing byte in the little-endian serialization of
/// the two payloads (8 bytes per element); nullopt when identical.
std::optional<std::size_t> first_diff_byte(const net::Payload& a,
                                           const net::Payload& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    const std::uint64_t x = a[i].to_u64();
    const std::uint64_t y = b[i].to_u64();
    if (x == y) continue;
    for (std::size_t j = 0; j < 8; ++j)
      if (((x >> (8 * j)) & 0xFF) != ((y >> (8 * j)) & 0xFF))
        return i * 8 + j;
  }
  if (a.size() != b.size()) return common * 8;
  return std::nullopt;
}

Divergence at_message(std::size_t round, const net::RecordedMessage& m,
                      std::string description) {
  Divergence d;
  d.round = round;
  d.broadcast = m.broadcast;
  d.from = m.from;
  d.to = m.to;
  d.seq = m.seq;
  d.description = std::move(description);
  return d;
}

Divergence at_round(std::size_t round, std::string description) {
  Divergence d;
  d.round = round;
  d.description = std::move(description);
  return d;
}

std::string serialize_tampers(const std::vector<net::TamperRecord>& ts) {
  std::string s;
  for (const auto& t : ts)
    s += std::to_string(t.round) + (t.broadcast ? "b" : "p") +
         std::to_string(t.from) + ">" + std::to_string(t.to) + ";";
  return s;
}

std::string serialize_faults(const std::vector<net::FaultEvent>& fs) {
  std::string s;
  for (const auto& f : fs)
    s += std::string(net::fault_kind_name(f.spec.kind)) + "@" +
         std::to_string(f.round) + ":" + std::to_string(f.spec.from) + ">" +
         std::to_string(f.spec.to) + ":" + std::to_string(f.messages_hit) +
         ":" + std::to_string(f.elements_delta) + ";";
  return s;
}

std::string serialize_blames(const std::vector<net::BlameRecord>& bs) {
  std::string s;
  for (const auto& b : bs)
    s += std::to_string(b.accuser) + ">" + std::to_string(b.accused) + ":" +
         b.reason + "@" + std::to_string(b.round) + ";";
  return s;
}

}  // namespace

std::string Divergence::format() const {
  std::string s = "round " + std::to_string(round) + ", " +
                  channel_str(broadcast, from, to) + ", msg " +
                  std::to_string(seq) + ": " + description;
  if (byte_offset != kUnknownOffset)
    s += " (first differing byte offset " + std::to_string(byte_offset) + ")";
  return s;
}

std::optional<Divergence> diff_rounds(const net::RecordedRound& reference,
                                      const net::RecordedRound& candidate) {
  const std::size_t common =
      std::min(reference.messages.size(), candidate.messages.size());
  for (std::size_t i = 0; i < common; ++i) {
    const net::RecordedMessage& ref = reference.messages[i];
    const net::RecordedMessage& live = candidate.messages[i];
    if (ref.broadcast != live.broadcast || ref.from != live.from ||
        ref.to != live.to || ref.seq != live.seq)
      return at_message(reference.index, ref,
                        "message coordinates differ: recorded " +
                            coords_str(ref) + ", live " + coords_str(live));
    if (!ref.payload.empty() || !live.payload.empty()) {
      if (const auto offset = first_diff_byte(ref.payload, live.payload)) {
        Divergence d = at_message(
            reference.index, ref,
            ref.payload.size() == live.payload.size()
                ? "payloads differ"
                : "payload length differs: recorded " +
                      std::to_string(ref.payload.size()) + " elements, live " +
                      std::to_string(live.payload.size()));
        d.byte_offset = *offset;
        return d;
      }
    } else if (ref.elements != live.elements) {
      Divergence d = at_message(
          reference.index, ref,
          "payload length differs: recorded " + std::to_string(ref.elements) +
              " elements, live " + std::to_string(live.elements));
      d.byte_offset = std::min(ref.elements, live.elements) * 8;
      return d;
    }
    if (ref.digest != live.digest)
      return at_message(reference.index, ref,
                        "channel digest differs: recorded " +
                            net::hex_u64(ref.digest) + ", live " +
                            net::hex_u64(live.digest));
  }
  if (reference.messages.size() != candidate.messages.size()) {
    const bool extra = candidate.messages.size() > common;
    const net::RecordedMessage& m = extra ? candidate.messages[common]
                                          : reference.messages[common];
    return at_message(reference.index, m,
                      extra ? "live execution delivered an extra message"
                            : "recorded message missing from live execution");
  }
  if (!(reference.delta == candidate.delta))
    return at_round(reference.index, "round cost delta differs");
  if (serialize_tampers(reference.tampers) !=
      serialize_tampers(candidate.tampers))
    return at_round(reference.index, "adversary tamper log differs");
  if (serialize_faults(reference.faults) != serialize_faults(candidate.faults))
    return at_round(reference.index, "fault event log differs");
  if (serialize_blames(reference.blames) != serialize_blames(candidate.blames))
    return at_round(reference.index, "blame log differs");
  return std::nullopt;
}

std::optional<Divergence> first_divergence(const net::Recording& reference,
                                           const net::Recording& candidate) {
  const std::size_t common =
      std::min(reference.rounds.size(), candidate.rounds.size());
  for (std::size_t r = 0; r < common; ++r)
    if (auto d = diff_rounds(reference.rounds[r], candidate.rounds[r]))
      return d;
  if (reference.rounds.size() != candidate.rounds.size())
    return at_round(common,
                    reference.rounds.size() > candidate.rounds.size()
                        ? "recording has more rounds than the candidate"
                        : "candidate has more rounds than the recording");
  if (reference.final_digest != candidate.final_digest)
    return at_round(common, "final transcript digest differs: recorded " +
                                net::hex_u64(reference.final_digest) +
                                ", candidate " +
                                net::hex_u64(candidate.final_digest));
  return std::nullopt;
}

ReplayVerifier::ReplayVerifier(net::Recording reference)
    : reference_(std::move(reference)),
      // Match the reference's fidelity tier: a profile-fidelity reference
      // (digests = false) only certifies the header stream, so the live
      // recorder must not absorb digests either or every digest would
      // "differ" from the recorded zeros.
      live_(net::Recorder::Options{reference_.payloads,
                                   reference_.digests}) {}

void ReplayVerifier::on_round_end(const net::Network& net,
                                  const net::CostReport& delta) {
  if (divergence_) return;  // already off-contract; stop at the first
  live_.on_round_end(net, delta);
  const std::size_t r = rounds_checked_++;
  if (r >= reference_.rounds.size()) {
    divergence_ =
        at_round(r, "live execution ran more rounds than the recording");
    return;
  }
  divergence_ =
      diff_rounds(reference_.rounds[r], live_.recording().rounds[r]);
}

const std::optional<Divergence>& ReplayVerifier::finish() {
  if (!divergence_ && rounds_checked_ < reference_.rounds.size())
    divergence_ = at_round(
        rounds_checked_,
        "recording has " + std::to_string(reference_.rounds.size()) +
            " rounds but the live execution ended after " +
            std::to_string(rounds_checked_));
  if (!divergence_ && reference_.final_digest !=
                          live_.recording().final_digest)
    divergence_ = at_round(rounds_checked_, "final transcript digest differs");
  return divergence_;
}

}  // namespace gfor14::audit
