#include "audit/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gfor14::audit {

namespace {

struct DiffCtx {
  BenchDiffResult& out;
  const std::vector<GateSpec>& gates;
  const std::vector<CeilingSpec>& ceilings;
  /// Schema versions differ: one-sided fields are expected, collect them
  /// into a single skipped-keys note instead of one note each.
  bool tolerate_missing = false;
  std::vector<std::string> skipped;
};

/// GateSpec/CeilingSpec key matching: full dotted key or dotted suffix.
bool key_matches(const std::string& key, const std::string& pattern) {
  return key == pattern ||
         (key.size() > pattern.size() + 1 &&
          key.compare(key.size() - pattern.size(), pattern.size(), pattern) ==
              0 &&
          key[key.size() - pattern.size() - 1] == '.');
}

void note_missing(DiffCtx& ctx, std::size_t row, const std::string& key,
                  const char* side) {
  if (ctx.tolerate_missing) {
    if (std::find(ctx.skipped.begin(), ctx.skipped.end(), key) ==
        ctx.skipped.end())
      ctx.skipped.push_back(key);
    return;
  }
  ctx.out.notes.push_back("row " + std::to_string(row) + ": field '" + key +
                          "' missing from " + side);
}

const GateSpec* match_gate(const DiffCtx& ctx, const std::string& key) {
  for (const auto& g : ctx.gates)
    if (key_matches(key, g.key)) return &g;
  return nullptr;
}

const CeilingSpec* match_ceiling(const DiffCtx& ctx, const std::string& key) {
  for (const auto& c : ctx.ceilings)
    if (key_matches(key, c.key)) return &c;
  return nullptr;
}

/// Walks matched numeric leaves of two row values, dotted-key style;
/// anything present on one side only (or changing type) becomes a note.
void diff_value(const json::Value& base, const json::Value& cand,
                std::size_t row, const std::string& key, DiffCtx& ctx) {
  BenchDiffResult& out = ctx.out;
  if (base.is_number() && cand.is_number()) {
    ++out.fields_compared;
    const double b = base.as_double();
    const double c = cand.as_double();
    if (const CeilingSpec* lid = match_ceiling(ctx, key))
      if (c > lid->max) {
        // Absolute bound on the candidate: baseline slot carries the max so
        // format() can print "value > max". Always blocks.
        out.deltas.push_back(
            {row, key, lid->max, c, 0.0, false, false, true});
        return;
      }
    if (b == c) return;
    const double rel = b == 0.0 ? (c > 0 ? 1e9 : -1e9)
                                : (c - b) / std::fabs(b);
    const GateSpec* gate = match_gate(ctx, key);
    const double threshold = gate ? gate->threshold : out.threshold;
    if (std::fabs(rel) > threshold)
      out.deltas.push_back(
          {row, key, b, c, rel, higher_is_better(key), gate != nullptr, false});
    return;
  }
  if (base.is_object() && cand.is_object()) {
    for (const auto& [k, bv] : base.members()) {
      const std::string sub = key.empty() ? k : key + "." + k;
      if (const json::Value* cv = cand.find(k))
        diff_value(bv, *cv, row, sub, ctx);
      else if (bv.is_number() || bv.is_object())
        note_missing(ctx, row, sub, "candidate");
    }
    for (const auto& [k, cv] : cand.members())
      if (!base.find(k) && (cv.is_number() || cv.is_object()))
        note_missing(ctx, row, key.empty() ? k : key + "." + k, "baseline");
    return;
  }
  if (base.is_number() != cand.is_number() ||
      base.is_object() != cand.is_object())
    out.notes.push_back("row " + std::to_string(row) + ": field '" + key +
                        "' changed type");
  // Matched strings/bools/nulls are labels, not measurements; a changed
  // label means the rows describe different configurations.
  if (base.is_string() && cand.is_string() &&
      base.as_string() != cand.as_string())
    out.notes.push_back("row " + std::to_string(row) + ": label '" + key +
                        "' differs: baseline \"" + base.as_string() +
                        "\", candidate \"" + cand.as_string() + "\"");
}

std::string get_experiment(const json::Value& doc) {
  const json::Value* e = doc.find("experiment");
  return e && e->is_string() ? e->as_string() : std::string("?");
}

double get_schema(const json::Value& doc) {
  const json::Value* s = doc.find("schema");
  return s && s->is_number() ? s->as_double() : 0.0;
}

}  // namespace

bool higher_is_better(const std::string& key) {
  const std::size_t dot = key.rfind('.');
  const std::string leaf = dot == std::string::npos ? key : key.substr(dot + 1);
  for (const char* marker : {"per_sec", "_mb_s", "speedup", "throughput"})
    if (leaf.find(marker) != std::string::npos) return true;
  return false;
}

BenchDiffResult bench_diff(const json::Value& baseline,
                           const json::Value& candidate, double threshold,
                           const std::vector<GateSpec>& gates,
                           const std::vector<CeilingSpec>& ceilings) {
  BenchDiffResult out;
  out.threshold = threshold;
  out.gates_active = gates.size();
  out.ceilings_active = ceilings.size();
  out.experiment = get_experiment(baseline);

  if (get_experiment(baseline) != get_experiment(candidate))
    out.notes.push_back("experiment differs: baseline '" +
                        get_experiment(baseline) + "', candidate '" +
                        get_experiment(candidate) + "'");

  DiffCtx ctx{out, gates, ceilings, false, {}};
  const double bschema = get_schema(baseline);
  const double cschema = get_schema(candidate);
  ctx.tolerate_missing = bschema != cschema;

  const json::Value* brows = baseline.find("rows");
  const json::Value* crows = candidate.find("rows");
  if (!brows || !brows->is_array() || !crows || !crows->is_array()) {
    out.notes.push_back("artifact missing 'rows' array");
    return out;
  }
  const std::size_t common = std::min(brows->size(), crows->size());
  if (brows->size() != crows->size())
    out.notes.push_back("row count differs: baseline " +
                        std::to_string(brows->size()) + ", candidate " +
                        std::to_string(crows->size()));
  for (std::size_t i = 0; i < common; ++i)
    diff_value(brows->at(i), crows->at(i), i, "", ctx);

  if (ctx.tolerate_missing) {
    std::string note = "schema versions differ (baseline " +
                       std::to_string(static_cast<int>(bschema)) +
                       ", candidate " +
                       std::to_string(static_cast<int>(cschema)) +
                       "); diffed key intersection";
    if (!ctx.skipped.empty()) {
      note += "; skipped keys:";
      for (const auto& k : ctx.skipped) note += " " + k;
    }
    out.notes.push_back(std::move(note));
  }
  return out;
}

std::string BenchDiffResult::format() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "bench-diff %s: %zu fields compared, threshold %.0f%%",
                experiment.c_str(), fields_compared, threshold * 100.0);
  std::string s = buf;
  if (gates_active > 0) {
    std::snprintf(buf, sizeof buf, ", %zu gate%s (blocking)", gates_active,
                  gates_active == 1 ? "" : "s");
    s += buf;
  }
  if (ceilings_active > 0) {
    std::snprintf(buf, sizeof buf, ", %zu ceiling%s (blocking)",
                  ceilings_active, ceilings_active == 1 ? "" : "s");
    s += buf;
  }
  s += "\n";
  for (const auto& n : notes) s += "  note: " + n + "\n";
  for (const auto& d : deltas) {
    if (d.ceiling) {
      std::snprintf(buf, sizeof buf, "  CEILING EXCEEDED row %zu %s: %g > max %g\n",
                    d.row, d.key.c_str(), d.candidate, d.baseline);
      s += buf;
      continue;
    }
    const bool blocking = gates_active + ceilings_active == 0 || d.gated;
    const char* label = !d.regression()       ? "improvement"
                        : d.gated             ? "GATE REGRESSION"
                        : blocking            ? "REGRESSION "
                                              : "regression (info)";
    std::snprintf(buf, sizeof buf, "  %s row %zu %s: %g -> %g (%+.1f%%)\n",
                  label, d.row, d.key.c_str(), d.baseline, d.candidate,
                  d.rel * 100.0);
    s += buf;
  }
  if (clean()) s += "  identical within threshold\n";
  return s;
}

}  // namespace gfor14::audit
