#include "audit/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gfor14::audit {

namespace {

/// Walks matched numeric leaves of two row values, dotted-key style;
/// anything present on one side only (or changing type) becomes a note.
void diff_value(const json::Value& base, const json::Value& cand,
                std::size_t row, const std::string& key,
                BenchDiffResult& out) {
  if (base.is_number() && cand.is_number()) {
    ++out.fields_compared;
    const double b = base.as_double();
    const double c = cand.as_double();
    if (b == c) return;
    const double rel = b == 0.0 ? (c > 0 ? 1e9 : -1e9)
                                : (c - b) / std::fabs(b);
    if (std::fabs(rel) > out.threshold)
      out.deltas.push_back({row, key, b, c, rel});
    return;
  }
  if (base.is_object() && cand.is_object()) {
    for (const auto& [k, bv] : base.members()) {
      const std::string sub = key.empty() ? k : key + "." + k;
      if (const json::Value* cv = cand.find(k))
        diff_value(bv, *cv, row, sub, out);
      else if (bv.is_number() || bv.is_object())
        out.notes.push_back("row " + std::to_string(row) + ": field '" + sub +
                            "' missing from candidate");
    }
    for (const auto& [k, cv] : cand.members())
      if (!base.find(k) && (cv.is_number() || cv.is_object()))
        out.notes.push_back("row " + std::to_string(row) + ": field '" +
                            (key.empty() ? k : key + "." + k) +
                            "' missing from baseline");
    return;
  }
  if (base.is_number() != cand.is_number() ||
      base.is_object() != cand.is_object())
    out.notes.push_back("row " + std::to_string(row) + ": field '" + key +
                        "' changed type");
  // Matched strings/bools/nulls are labels, not measurements; a changed
  // label means the rows describe different configurations.
  if (base.is_string() && cand.is_string() &&
      base.as_string() != cand.as_string())
    out.notes.push_back("row " + std::to_string(row) + ": label '" + key +
                        "' differs: baseline \"" + base.as_string() +
                        "\", candidate \"" + cand.as_string() + "\"");
}

std::string get_experiment(const json::Value& doc) {
  const json::Value* e = doc.find("experiment");
  return e && e->is_string() ? e->as_string() : std::string("?");
}

}  // namespace

BenchDiffResult bench_diff(const json::Value& baseline,
                           const json::Value& candidate, double threshold) {
  BenchDiffResult out;
  out.threshold = threshold;
  out.experiment = get_experiment(baseline);

  if (get_experiment(baseline) != get_experiment(candidate))
    out.notes.push_back("experiment differs: baseline '" +
                        get_experiment(baseline) + "', candidate '" +
                        get_experiment(candidate) + "'");

  const json::Value* brows = baseline.find("rows");
  const json::Value* crows = candidate.find("rows");
  if (!brows || !brows->is_array() || !crows || !crows->is_array()) {
    out.notes.push_back("artifact missing 'rows' array");
    return out;
  }
  const std::size_t common = std::min(brows->size(), crows->size());
  if (brows->size() != crows->size())
    out.notes.push_back("row count differs: baseline " +
                        std::to_string(brows->size()) + ", candidate " +
                        std::to_string(crows->size()));
  for (std::size_t i = 0; i < common; ++i)
    diff_value(brows->at(i), crows->at(i), i, "", out);
  return out;
}

std::string BenchDiffResult::format() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "bench-diff %s: %zu fields compared, threshold %.0f%%\n",
                experiment.c_str(), fields_compared, threshold * 100.0);
  std::string s = buf;
  for (const auto& n : notes) s += "  note: " + n + "\n";
  for (const auto& d : deltas) {
    std::snprintf(buf, sizeof buf, "  %s row %zu %s: %g -> %g (%+.1f%%)\n",
                  d.regression() ? "REGRESSION " : "improvement",
                  d.row, d.key.c_str(), d.baseline, d.candidate,
                  d.rel * 100.0);
    s += buf;
  }
  if (clean()) s += "  identical within threshold\n";
  return s;
}

}  // namespace gfor14::audit
